package calib

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bus"
	"repro/internal/des"
)

// ExtractedGeometry is what timing-based extraction recovers about a drive
// (paper Section 3.2: "we obtain information on disk zones, track skew,
// bad sectors, and reserved sectors through a sequence of low-level disk
// operations", after Worthington et al.).
type ExtractedGeometry struct {
	R          des.Time // rotation period
	Heads      int      // surfaces per cylinder
	TrackSkew  int      // sectors, at the probed (outer) zone
	CylSkew    int      // sectors, at the probed (outer) zone
	ZoneSPT    []int    // sectors per track, outer to inner
	ZoneStarts []int64  // first LBA of each zone
}

// extractor bundles the probing state.
type extractor struct {
	sim  *des.Sim
	drv  *bus.Drive
	r    float64 // rotation period estimate
	size int64   // total LBAs (from "read capacity")
}

// gapMod measures the rotational offset, as time in [0, R), between sector
// base and sector base+k: it reads the pair back-to-back several times and
// takes a circular median of the completion-gap residue mod R. Mechanical
// completions of the two sectors are separated by their angular distance
// plus whole rotations, so the residue isolates the angle.
func (e *extractor) gapMod(base int64, k int64, trials int) float64 {
	var vals []float64
	for i := 0; i < trials; i++ {
		a := read1(e.sim, e.drv, base)
		b := read1(e.sim, e.drv, base+k)
		g := math.Mod(float64(b.Observed-a.Observed), e.r)
		if g < 0 {
			g += e.r
		}
		vals = append(vals, g)
	}
	sort.Float64s(vals)
	return circularMedian(vals, e.r)
}

// circularMedian takes a median robust to values straddling the 0/R wrap.
func circularMedian(sorted []float64, r float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if sorted[len(sorted)-1]-sorted[0] < r/2 {
		return sorted[len(sorted)/2]
	}
	ref := sorted[0]
	shifted := make([]float64, len(sorted))
	for i, v := range sorted {
		d := v - ref
		if d > r/2 {
			d -= r
		}
		shifted[i] = d
	}
	sort.Float64s(shifted)
	m := ref + shifted[len(shifted)/2]
	if m < 0 {
		m += r
	}
	return math.Mod(m, r)
}

// skewDev returns the accumulated skew deviation, in time, of sector
// base+k relative to the no-boundary expectation k*width, folded into
// [-R/2, R/2). On a defect-free region this is (boundaries crossed) x
// (skew x width), perturbed only by timestamp noise.
func (e *extractor) skewDev(base, k int64, width float64, trials int) float64 {
	g := e.gapMod(base, k, trials)
	expect := math.Mod(float64(k)*width, e.r)
	dev := g - expect
	dev -= math.Round(dev/e.r) * e.r
	return dev
}

// crossed reports whether at least one track boundary lies within k
// sectors after base.
func (e *extractor) crossed(base, k int64, width float64) bool {
	return math.Abs(e.skewDev(base, k, width, 5)) > 12*width
}

// firstBoundary binary searches the distance, in sectors, from base to the
// first track boundary, looking no further than hiK. Returns -1 if none.
func (e *extractor) firstBoundary(base, hiK int64, width float64) int64 {
	if !e.crossed(base, hiK, width) {
		return -1
	}
	lo, hi := int64(1), hiK
	for lo < hi {
		mid := (lo + hi) / 2
		if e.crossed(base, mid, width) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// widthAt robustly estimates the per-sector time at a region by taking the
// median of short-hop measurements at several offsets — at most one or two
// of which can cross a track boundary and inflate.
func (e *extractor) widthAt(base int64) float64 {
	var ws []float64
	for _, off := range []int64{0, 51, 102, 153} {
		ws = append(ws, e.gapMod(base+off, 8, 7)/8)
	}
	sort.Float64s(ws)
	return (ws[1] + ws[2]) / 2
}

// sptAt measures sectors-per-track at a region: it finds the first track
// boundary after base, hops just past it, and finds the next one; the two
// boundaries are exactly one track apart.
func (e *extractor) sptAt(base int64) (int, error) {
	w := e.widthAt(base)
	if w <= 0 {
		return 0, fmt.Errorf("calib: non-positive sector width at LBA %d", base)
	}
	rough := e.r / w
	if rough < 16 || rough > 4096 {
		return 0, fmt.Errorf("calib: implausible rough SPT %.1f at LBA %d", rough, base)
	}
	hiK := int64(rough * 1.25)
	b1 := e.firstBoundary(base, hiK, w)
	if b1 < 0 {
		return 0, fmt.Errorf("calib: no track boundary within %d sectors of LBA %d", hiK, base)
	}
	base2 := base + b1 + 2
	b2 := e.firstBoundary(base2, hiK, w)
	if b2 < 0 {
		return 0, fmt.Errorf("calib: no second track boundary after LBA %d", base2)
	}
	return int(b2 + 2), nil
}

// ExtractGeometry discovers the drive's layout from timing alone: rotation
// period, heads, skews, and the zone map. Only the LBA interface and the
// reported capacity are used. It assumes the probed regions are defect-free
// (the real tool retried elsewhere when a probe region looked
// inconsistent).
func ExtractGeometry(sim *des.Sim, drv *bus.Drive, nominalR des.Time) (*ExtractedGeometry, error) {
	e := &extractor{sim: sim, drv: drv, size: drv.Geometry().TotalSectors()}
	e.r = float64(MeasureRotation(sim, drv, nominalR))
	out := &ExtractedGeometry{R: des.Time(e.r)}

	// --- Track structure at the outer edge ---
	base := int64(0)
	spt0, err := e.sptAt(base)
	if err != nil {
		return nil, err
	}
	width := e.r / float64(spt0)
	out.ZoneSPT = append(out.ZoneSPT, spt0)

	// Locate the first boundary precisely, then step boundary by boundary
	// (they are exactly spt0 apart within the zone) measuring each jump:
	// heads-1 track-skew jumps, then a cylinder jump of (cyl+track) skew.
	b1 := e.firstBoundary(base, int64(float64(spt0)*1.25), width)
	if b1 < 0 {
		return nil, fmt.Errorf("calib: lost the first track boundary")
	}
	var trackJump float64
	for i := 0; i < 3*drvMaxHeads; i++ {
		b := b1 + int64(i*spt0)
		before := e.skewDev(base, b-1, width, 5)
		after := e.skewDev(base, b+1, width, 5)
		jump := after - before
		jump -= math.Round(jump/e.r) * e.r
		if i == 0 {
			trackJump = jump
			continue
		}
		if jump > 1.5*trackJump {
			// Cylinder boundary. Jumps seen so far: boundary 0 was
			// head0->head1, so i track boundaries precede this one and the
			// cylinder has i+1 heads.
			out.Heads = i + 1
			out.TrackSkew = int(math.Round(trackJump / width))
			out.CylSkew = int(math.Round(jump/width)) - out.TrackSkew
			break
		}
		// Running average of track-skew jumps for a better estimate.
		trackJump = (trackJump*float64(i) + jump) / float64(i+1)
	}
	if out.Heads == 0 {
		return nil, fmt.Errorf("calib: no cylinder boundary found (uniform skew jumps)")
	}

	// --- Zone map: sample SPT across the LBA space, binary search the
	// boundaries between samples that disagree. ---
	probe := func(lba int64) (int, error) {
		if lba < 0 {
			lba = 0
		}
		if max := e.size - 4096; lba > max {
			lba = max
		}
		return e.sptAt(lba)
	}
	const samples = 24
	type samplePt struct {
		lba int64
		spt int
	}
	pts := []samplePt{{0, spt0}}
	for i := 1; i < samples; i++ {
		lba := e.size * int64(i) / samples
		spt, err := probe(lba)
		if err != nil {
			continue // skip unprobeable spots; neighbors cover the zone
		}
		pts = append(pts, samplePt{lba, spt})
	}
	out.ZoneStarts = append(out.ZoneStarts, 0)
	for i := 1; i < len(pts); i++ {
		prev, next := pts[i-1].spt, pts[i].spt
		if next == prev {
			continue
		}
		lo, hi := pts[i-1].lba, pts[i].lba
		for hi-lo > 1<<16 { // a zone map is coarse; 64K LBAs ≈ 25 tracks
			mid := (lo + hi) / 2
			spt, err := probe(mid)
			if err != nil || absInt(spt-next) <= absInt(spt-prev) {
				hi = mid
			} else {
				lo = mid
			}
		}
		out.ZoneSPT = append(out.ZoneSPT, next)
		out.ZoneStarts = append(out.ZoneStarts, hi)
	}
	return out, nil
}

// drvMaxHeads bounds the cylinder-boundary scan; no drive of the era had
// more surfaces.
const drvMaxHeads = 24

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
