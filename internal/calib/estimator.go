package calib

import (
	"math"

	"repro/internal/des"
	"repro/internal/disk"
)

// AccessEstimator predicts the host-observed service time of a physical
// request. Position-aware schedulers (SATF/RSATF) rank candidates with it,
// and RLOOK/RSATF use it to choose among rotational replicas.
type AccessEstimator interface {
	// Access predicts the service time of req submitted at time now with
	// the arm at st.
	Access(st disk.State, req disk.Request, now des.Time) des.Time
	// AccessRun predicts the total service time of a multi-extent run
	// issued back-to-back (a replica fragmented at track boundaries). A
	// fragmented replica costs per-command overheads and possible missed
	// revolutions at every join, which is exactly what makes a contiguous
	// replica preferable for large transfers.
	AccessRun(st disk.State, extents []disk.Extent, write bool, now des.Time) des.Time
	// RotationPeriod returns the (estimated) rotation period, used by
	// schedulers for slack arithmetic and by models.
	RotationPeriod() des.Time
}

// Exact is the simulator-mode estimator: it asks the mechanical model
// directly and adds the fixed controller overhead. Predictions are perfect
// by construction, which is what makes the integrated simulator useful as
// a baseline for validating the prototype (paper Section 3.5).
type Exact struct {
	Dsk      *disk.Disk
	Overhead des.Time // fixed per-command pre+post overhead
}

// Access implements AccessEstimator.
func (e *Exact) Access(st disk.State, req disk.Request, now des.Time) des.Time {
	t, err := e.Dsk.AccessTime(st, req, now+e.Overhead/2)
	if err != nil {
		// Scheduling should never construct invalid requests; an error here
		// is a layout bug, not a runtime condition.
		panic(err)
	}
	return t + e.Overhead
}

// AccessRun implements AccessEstimator by chaining the mechanical model
// across the extents.
func (e *Exact) AccessRun(st disk.State, extents []disk.Extent, write bool, now des.Time) des.Time {
	start := now
	for _, ext := range extents {
		tm, err := e.Dsk.Service(st, disk.Request{Start: ext.Start, Count: ext.Count, Write: write}, now+e.Overhead/2)
		if err != nil {
			panic(err)
		}
		now = now + e.Overhead + tm.Total()
		st = tm.End
	}
	return now - start
}

// RotationPeriod implements AccessEstimator.
func (e *Exact) RotationPeriod() des.Time { return e.Dsk.R }

// Tracked is the prototype-mode estimator: it composes the measured seek
// curve, measured overheads, and the Tracker's rotation estimate. It never
// consults the drive's true mechanical state.
type Tracked struct {
	Geom       *disk.Geometry
	Seek       disk.SeekCurve
	HeadSwitch des.Time
	Pre, Post  des.Time // mean command overheads (Post includes bus transfer)
	Trk        *Tracker
	// Slack, if non-nil, contributes the conservative margin (in sectors)
	// added ahead of the target: predictions inside the margin are treated
	// as missing the target and costing a full extra rotation.
	Slack *SlackController
}

// Access implements AccessEstimator.
func (t *Tracked) Access(st disk.State, req disk.Request, now des.Time) des.Time {
	r := t.Trk.R()
	move := t.Seek.Time(req.Start.Cyl-st.Cyl, req.Write)
	if req.Start.Head != st.Head && t.HeadSwitch > move {
		move = t.HeadSwitch
	}
	arrive := now + t.Pre + move
	target := t.Geom.SectorAngle(req.Start)
	wait := t.Trk.TimeToAngle(arrive, target)
	if t.Slack != nil {
		margin := des.Time(float64(t.Slack.K()) * t.Geom.AngularWidth(req.Start.Cyl) * float64(r))
		if wait < margin {
			wait += r
		}
	}
	xfer := t.transferTime(req)
	return t.Pre + move + wait + xfer + t.Post
}

// transferTime estimates media transfer, charging head switches at track
// boundaries. With correctly sized skews each boundary costs about the
// skew angle.
func (t *Tracked) transferTime(req disk.Request) des.Time {
	r := t.Trk.R()
	remaining := req.Count
	cur := req.Start
	var total des.Time
	for remaining > 0 {
		spt := t.Geom.SPTOf(cur.Cyl)
		n := spt - cur.Sector
		if n > remaining {
			n = remaining
		}
		total += des.Time(float64(n) / float64(spt) * float64(r))
		remaining -= n
		if remaining > 0 {
			z := t.Geom.Zones[t.Geom.ZoneIndexOf(cur.Cyl)]
			total += des.Time(float64(z.TrackSkew) / float64(spt) * float64(r))
			if cur.Head+1 < t.Geom.Heads {
				cur = disk.Chs{Cyl: cur.Cyl, Head: cur.Head + 1}
			} else {
				cur = disk.Chs{Cyl: cur.Cyl + 1, Head: 0}
			}
		}
	}
	return total
}

// AccessRun implements AccessEstimator by chaining Access across the
// extents with the arm state updated between them.
func (t *Tracked) AccessRun(st disk.State, extents []disk.Extent, write bool, now des.Time) des.Time {
	start := now
	for _, ext := range extents {
		now += t.Access(st, disk.Request{Start: ext.Start, Count: ext.Count, Write: write}, now)
		st = disk.State{Cyl: ext.Start.Cyl, Head: ext.Start.Head}
	}
	return now - start
}

// RotationPeriod implements AccessEstimator.
func (t *Tracked) RotationPeriod() des.Time { return t.Trk.R() }

// PredictionRecord pairs a prediction with its measurement for accuracy
// accounting (paper Table 2).
type PredictionRecord struct {
	Predicted, Measured des.Time
}

// Error returns measured minus predicted.
func (p PredictionRecord) Error() des.Time { return p.Measured - p.Predicted }

// IsRotationMiss reports whether the request lost (at least) a rotation
// relative to the prediction.
func (p PredictionRecord) IsRotationMiss(r des.Time) bool {
	return float64(p.Error()) > 0.8*float64(r)
}

// AccuracyStats aggregates prediction records into the paper's Table 2
// metrics.
type AccuracyStats struct {
	records []PredictionRecord
}

// Add appends a record.
func (a *AccuracyStats) Add(rec PredictionRecord) { a.records = append(a.records, rec) }

// Merge appends all of b's records.
func (a *AccuracyStats) Merge(b *AccuracyStats) { a.records = append(a.records, b.records...) }

// N returns the number of records.
func (a *AccuracyStats) N() int { return len(a.records) }

// Report computes miss rate, mean error, error standard deviation, mean
// measured access time, and the demerit figure (RMS prediction error, after
// Ruemmler & Wilkes).
func (a *AccuracyStats) Report(r des.Time) (missRate float64, meanErr, stdErr, meanAccess, demerit des.Time) {
	if len(a.records) == 0 {
		return 0, 0, 0, 0, 0
	}
	var sum, sumSq, acc float64
	misses := 0
	for _, rec := range a.records {
		e := float64(rec.Error())
		sum += e
		sumSq += e * e
		acc += float64(rec.Measured)
		if rec.IsRotationMiss(r) {
			misses++
		}
	}
	n := float64(len(a.records))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return float64(misses) / n, des.Time(mean), des.Time(math.Sqrt(variance)),
		des.Time(acc / n), des.Time(math.Sqrt(sumSq / n))
}
