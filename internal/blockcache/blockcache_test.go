package blockcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(3 * BlockSectors * 512)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	c.Touch(1)  // 1 most recent; LRU order now 2,3,1
	c.Insert(4) // evicts 2
	if c.Contains(2) {
		t.Fatal("LRU did not evict the least recently used block")
	}
	for _, b := range []int64{1, 3, 4} {
		if !c.Contains(b) {
			t.Fatalf("block %d missing", b)
		}
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewLRU(16 * BlockSectors * 512)
		for i := 0; i < 500; i++ {
			c.Insert(rng.Int63n(100))
			if c.Len() > c.Blocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUCounters(t *testing.T) {
	c := NewLRU(4 * BlockSectors * 512)
	if c.Touch(9) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(9)
	if !c.Touch(9) {
		t.Fatal("miss on resident block")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCachedArrayHitFastMissSlow(t *testing.T) {
	sim := des.New()
	a, err := core.New(sim, core.Options{Config: layout.Striping(2), Policy: "satf", DataSectors: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ca := NewCachedArray(a, 1<<20)
	read := func(off int64) des.Time {
		var lat des.Time
		done := false
		if err := ca.Submit(core.Read, off, 8, false, func(r core.Result) {
			lat = r.Latency()
			done = true
		}); err != nil {
			t.Fatal(err)
		}
		for !done {
			if !sim.Step() {
				t.Fatal("stalled")
			}
		}
		return lat
	}
	cold := read(4096)
	warm := read(4096)
	if warm >= cold {
		t.Fatalf("warm read %v not faster than cold %v", warm, cold)
	}
	if warm > 200 {
		t.Fatalf("cache hit took %v, want memory speed", warm)
	}
	if ca.Cache.Hits == 0 || ca.Cache.Misses == 0 {
		t.Fatalf("hits=%d misses=%d", ca.Cache.Hits, ca.Cache.Misses)
	}
}

func TestCachedArrayWriteThrough(t *testing.T) {
	sim := des.New()
	a, err := core.New(sim, core.Options{Config: layout.Striping(2), Policy: "satf", DataSectors: 1 << 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ca := NewCachedArray(a, 1<<20)
	var wLat des.Time
	done := false
	if err := ca.Submit(core.Write, 512, 8, false, func(r core.Result) {
		wLat = r.Latency()
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	for !done {
		sim.Step()
	}
	// Synchronous writes are forced to disk: latency must be mechanical,
	// not memory-speed.
	if wLat < 500 {
		t.Fatalf("write completed in %v — write-through is broken", wLat)
	}
	// But the written block is now readable at cache speed.
	rDone := false
	var rLat des.Time
	ca.Submit(core.Read, 512, 8, false, func(r core.Result) { rLat, rDone = r.Latency(), true })
	for !rDone {
		sim.Step()
	}
	if rLat > 200 {
		t.Fatalf("read after cached write took %v", rLat)
	}
}
