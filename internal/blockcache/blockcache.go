// Package blockcache implements the LRU block cache used in the paper's
// memory-versus-disks comparison (Figure 11): a volatile read cache in
// front of the array, with synchronous writes forced through to disk.
package blockcache

import (
	"container/list"
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// BlockSectors is the cache line size in sectors (8 KB).
const BlockSectors = 16

// LRU is a fixed-capacity block cache.
type LRU struct {
	capacity int // blocks
	order    *list.List
	index    map[int64]*list.Element

	Hits, Misses int64
}

// NewLRU builds a cache holding capacityBytes of data.
func NewLRU(capacityBytes int64) *LRU {
	blocks := int(capacityBytes / (BlockSectors * 512))
	if blocks < 1 {
		blocks = 1
	}
	return &LRU{
		capacity: blocks,
		order:    list.New(),
		index:    make(map[int64]*list.Element),
	}
}

// Blocks returns the capacity in blocks.
func (c *LRU) Blocks() int { return c.capacity }

// Len returns the resident block count.
func (c *LRU) Len() int { return c.order.Len() }

// Contains probes without updating recency or counters.
func (c *LRU) Contains(block int64) bool {
	_, ok := c.index[block]
	return ok
}

// Touch looks a block up, updating recency and hit/miss counters.
func (c *LRU) Touch(block int64) bool {
	if e, ok := c.index[block]; ok {
		c.order.MoveToFront(e)
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// Insert adds a block (no-op if resident), evicting the least recently
// used as needed.
func (c *LRU) Insert(block int64) {
	if e, ok := c.index[block]; ok {
		c.order.MoveToFront(e)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.index, oldest.Value.(int64))
	}
	c.index[block] = c.order.PushFront(block)
}

// CachedArray fronts a core.Array with an LRU cache: read hits complete at
// memory speed, misses and all writes go to the array (write-through, as
// the paper forces synchronous writes to disk in both alternatives).
type CachedArray struct {
	Cache *LRU
	A     *core.Array
	// HitTime is the service time of a full cache hit.
	HitTime des.Time
}

// NewCachedArray wraps an array with capacityBytes of cache.
func NewCachedArray(a *core.Array, capacityBytes int64) *CachedArray {
	return &CachedArray{Cache: NewLRU(capacityBytes), A: a, HitTime: 50 * des.Microsecond}
}

// Submit mirrors core.Array.Submit through the cache.
func (ca *CachedArray) Submit(op core.Op, off int64, count int, async bool, done func(core.Result)) error {
	if count < 1 {
		return fmt.Errorf("blockcache: non-positive count")
	}
	first := off / BlockSectors
	last := (off + int64(count) - 1) / BlockSectors
	if op == core.Read {
		all := true
		for b := first; b <= last; b++ {
			if !ca.Cache.Touch(b) {
				all = false
			}
		}
		if all {
			submit := ca.A.Sim().Now()
			ca.A.Sim().After(ca.HitTime, func() {
				if done != nil {
					done(core.Result{Op: op, Off: off, Count: count, Async: async, Submit: submit, Done: ca.A.Sim().Now()})
				}
			})
			return nil
		}
		return ca.A.Submit(op, off, count, async, func(r core.Result) {
			for b := first; b <= last; b++ {
				ca.Cache.Insert(b)
			}
			if done != nil {
				done(r)
			}
		})
	}
	// Write-through: cache the written data, then force it to disk.
	for b := first; b <= last; b++ {
		ca.Cache.Insert(b)
	}
	return ca.A.Submit(op, off, count, async, done)
}

// SubmitBatch mirrors core.Array.SubmitBatch through the cache: hits are
// answered from memory, and the misses of the whole batch reach the array
// as one batch — each touched drive schedules once against all of them.
// Cache state updates in submission order, exactly as the equivalent
// sequence of Submit calls would. The returned count includes operations
// answered by the cache; the first array error stops the batch.
func (ca *CachedArray) SubmitBatch(ops []core.BatchOp) (int, error) {
	miss := make([]core.BatchOp, 0, len(ops))
	n := 0
	var batchErr error
	for i := range ops {
		o := &ops[i]
		if o.Count < 1 {
			batchErr = fmt.Errorf("blockcache: non-positive count")
			break
		}
		first := o.Off / BlockSectors
		last := (o.Off + int64(o.Count) - 1) / BlockSectors
		if o.Op == core.Read {
			all := true
			for b := first; b <= last; b++ {
				if !ca.Cache.Touch(b) {
					all = false
				}
			}
			if all {
				submit := ca.A.Sim().Now()
				op, off, count, async, done := o.Op, o.Off, o.Count, o.Async, o.Done
				ca.A.Sim().After(ca.HitTime, func() {
					if done != nil {
						done(core.Result{Op: op, Off: off, Count: count, Async: async, Submit: submit, Done: ca.A.Sim().Now()})
					}
				})
				n++
				continue
			}
			done := o.Done
			miss = append(miss, core.BatchOp{
				Op: o.Op, Off: o.Off, Count: o.Count, Async: o.Async,
				Done: func(r core.Result) {
					for b := first; b <= last; b++ {
						ca.Cache.Insert(b)
					}
					if done != nil {
						done(r)
					}
				},
			})
			n++
			continue
		}
		for b := first; b <= last; b++ {
			ca.Cache.Insert(b)
		}
		miss = append(miss, *o)
		n++
	}
	sent, err := ca.A.SubmitBatch(miss)
	if err != nil && batchErr == nil {
		batchErr = err
		// Operations the array rejected were counted optimistically above;
		// give the caller the number that actually went somewhere.
		n -= len(miss) - sent
	}
	return n, batchErr
}
