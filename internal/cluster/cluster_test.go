package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// newBrick builds one small mirrored test array on sim.
func newBrick(t *testing.T, sim *des.Sim, seed int64) *core.Array {
	t.Helper()
	a, err := core.New(sim, core.Options{
		Config: layout.Config{Ds: 1, Dr: 1, Dm: 2}, Seed: seed,
		DataSectors: 1 << 13,
		Crash:       core.CrashModel{Enabled: true, Durability: core.BatteryBacked},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// newTestCluster builds a colocated cluster of n bricks.
func newTestCluster(t *testing.T, n int, opts Options) (*des.Sim, *Cluster) {
	t.Helper()
	sim := des.New()
	bricks := make([]core.Volume, n)
	for i := range bricks {
		bricks[i] = newBrick(t, sim, int64(i+1))
	}
	if opts.ExtentSectors == 0 {
		opts.ExtentSectors = 512
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	c, err := New(sim, bricks, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sim, c
}

func TestPlacementDistinctAndDeterministic(t *testing.T) {
	caps := []int64{1 << 13, 1 << 13, 1 << 14, 1 << 13}
	m1, err := buildExtentMap(caps, nil, 2, 512, 1.0/16, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := buildExtentMap(caps, nil, 2, 512, 1.0/16, 7)
	if err != nil {
		t.Fatal(err)
	}
	perBrick := make([]int, len(caps))
	for e := int64(0); e < m1.extents; e++ {
		seen := map[int32]bool{}
		for k := 0; k < m1.r; k++ {
			l1, l2 := m1.locOf(e, k), m2.locOf(e, k)
			if l1 != l2 {
				t.Fatalf("extent %d replica %d: placement not deterministic (%v vs %v)", e, k, l1, l2)
			}
			if l1.brick < 0 {
				t.Fatalf("extent %d replica %d unplaced", e, k)
			}
			if seen[l1.brick] {
				t.Fatalf("extent %d has two replicas on brick %d", e, l1.brick)
			}
			seen[l1.brick] = true
			perBrick[l1.brick]++
			if off := m1.brickOff(l1, 0); off < 0 || off+512 > caps[l1.brick] {
				t.Fatalf("extent %d replica %d: offset %d outside brick %d", e, k, off, l1.brick)
			}
		}
	}
	// Weighted rendezvous: the double-capacity brick should carry roughly
	// double the replicas of a single-capacity one.
	ratio := float64(perBrick[2]) / float64(perBrick[0])
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("heterogeneous weighting off: perBrick=%v (brick 2 has 2x capacity, ratio %.2f)", perBrick, ratio)
	}
	// Distinct seeds move placements.
	m3, err := buildExtentMap(caps, nil, 2, 512, 1.0/16, 8)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for e := int64(0); e < m1.extents && e < m3.extents; e++ {
		if m1.locOf(e, 0) != m3.locOf(e, 0) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed moved no placements")
	}
}

func TestPlacementOptionErrors(t *testing.T) {
	caps := []int64{1 << 13, 1 << 13}
	if _, err := buildExtentMap(caps, nil, 3, 512, 0, 1); err == nil {
		t.Error("3 replicas over 2 bricks accepted")
	}
	if _, err := buildExtentMap(caps, nil, 5, 512, 0, 1); err == nil {
		t.Error("replicas > maxReplicas accepted")
	}
	if _, err := buildExtentMap(caps, []float64{1}, 1, 512, 0, 1); err == nil {
		t.Error("short weight vector accepted")
	}
	if _, err := buildExtentMap(caps, []float64{1, 0}, 1, 512, 0, 1); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := buildExtentMap([]int64{256}, nil, 1, 512, 0, 1); err == nil {
		t.Error("brick smaller than one extent accepted")
	}
}

// digestWorkload runs a fixed seeded closed loop against a volume and
// fingerprints every completion.
func digestWorkload(t *testing.T, sim *des.Sim, v core.Volume, ios int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	digest := ""
	finished := 0
	var issue func()
	issue = func() {
		if ios == 0 {
			return
		}
		ios--
		off := rng.Int63n(v.DataSectors() - 8)
		op := core.Read
		if rng.Float64() < 0.4 {
			op = core.Write
		}
		submit := sim.Now()
		err := v.Submit(op, off, 8, false, func(r core.Result) {
			finished++
			digest += r.Op.String() + ":" + r.Latency().String() + ";"
			issue()
		})
		if err != nil {
			t.Fatalf("submit at %v: %v", submit, err)
		}
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.Run()
	return digest
}

// TestPassthroughIdentical: a one-brick R=1 cluster must be byte-identical
// to the bare array underneath — replication off changes nothing.
func TestPassthroughIdentical(t *testing.T) {
	simA := des.New()
	direct := newBrick(t, simA, 1)
	want := digestWorkload(t, simA, direct, 400, 99)

	simB := des.New()
	brick := newBrick(t, simB, 1)
	cl, err := New(simB, []core.Volume{brick}, Options{Replicas: 1, ExtentSectors: 512, Seed: 42, Headroom: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The identity map requires cluster offsets to be brick offsets; with
	// one brick, R=1, and zero headroom, slot e == extent e and the volume
	// sizes match, so the seeded workloads are address-identical.
	if cl.DataSectors() != direct.DataSectors() {
		t.Fatalf("volume sizes differ: cluster %d vs array %d", cl.DataSectors(), direct.DataSectors())
	}
	got := digestWorkload(t, simB, cl, 400, 99)
	if got != want {
		t.Fatalf("one-brick R=1 cluster diverged from the bare array:\ndirect:  %.120s\ncluster: %.120s", want, got)
	}
	if c := cl.Counters(); c.ReadFailovers != 0 || c.Diverged != 0 || c.Trips != 0 {
		t.Fatalf("healthy passthrough moved failure counters: %+v", c)
	}
}

// TestReadFailoverDuringOutage: with R=2, a brick crash mid-workload must
// be invisible to readers — every read completes, none fail.
func TestReadFailoverDuringOutage(t *testing.T) {
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2})
	rng := rand.New(rand.NewSource(5))
	ios := 600
	finished, failed := 0, 0
	var issue func()
	issue = func() {
		if ios == 0 {
			return
		}
		ios--
		off := rng.Int63n(cl.DataSectors() - 8)
		if err := cl.Submit(core.Read, off, 8, false, func(r core.Result) {
			finished++
			if r.Failed {
				failed++
			}
			issue()
		}); err != nil {
			t.Fatalf("synchronous rejection with a replica alive: %v", err)
		}
	}
	sim.At(2*des.Millisecond, func() {
		if err := cl.CrashBrick(1); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sim.At(40*des.Millisecond, func() {
		if err := cl.Brick(1).Recover(); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.Run()
	if finished != 600 {
		t.Fatalf("finished %d/600", finished)
	}
	if failed != 0 {
		t.Fatalf("%d reads failed despite a surviving replica", failed)
	}
	ctr := cl.Counters()
	if ctr.ReadFailovers == 0 {
		t.Error("outage caused no failovers; test exercised nothing")
	}
	if ctr.Trips == 0 {
		t.Error("breaker never tripped")
	}
	if cl.State(1) != Healthy {
		t.Errorf("brick 1 state %v after recovery (probe did not close the breaker)", cl.State(1))
	}
	if ctr.Probes == 0 {
		t.Error("no half-open probes issued")
	}
}

// TestWriteDivergenceBackfillReconciles: writes during an outage diverge,
// recovery backfills them, and the counters reconcile exactly.
func TestWriteDivergenceBackfillReconciles(t *testing.T) {
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2, BackfillMBps: 512})
	rng := rand.New(rand.NewSource(6))
	ios := 500
	finished, failed := 0, 0
	var issue func()
	issue = func() {
		if ios == 0 {
			return
		}
		ios--
		off := rng.Int63n(cl.DataSectors() - 8)
		if err := cl.Submit(core.Write, off, 8, false, func(r core.Result) {
			finished++
			if r.Failed {
				failed++
			}
			issue()
		}); err != nil {
			t.Fatalf("synchronous write rejection with a replica alive: %v", err)
		}
	}
	sim.At(2*des.Millisecond, func() { _ = cl.CrashBrick(2) })
	sim.At(30*des.Millisecond, func() { _ = cl.Brick(2).Recover() })
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.Run()
	if finished != 500 || failed != 0 {
		t.Fatalf("finished %d/500, failed %d (quorum writes must absorb the outage)", finished, failed)
	}
	if !cl.Drain(des.Hour) {
		t.Fatal("cluster failed to drain")
	}
	ctr := cl.Counters()
	if ctr.Diverged == 0 {
		t.Fatal("outage writes logged no divergence; test exercised nothing")
	}
	if ctr.Diverged != ctr.Backfilled+ctr.Abandoned {
		t.Fatalf("divergence log does not reconcile: Diverged=%d Backfilled=%d Abandoned=%d",
			ctr.Diverged, ctr.Backfilled, ctr.Abandoned)
	}
	if ctr.Abandoned != 0 {
		t.Errorf("recovered outage abandoned %d entries", ctr.Abandoned)
	}
	if n := cl.DivergencePending(); n != 0 {
		t.Fatalf("%d divergence entries left after drain", n)
	}
}

// TestDoubleCrashDuringBackfill: a second crash while backfill is copying
// parks the log intact; the second recovery finishes the job and the
// counters still reconcile.
func TestDoubleCrashDuringBackfill(t *testing.T) {
	// Slow backfill so the second crash reliably lands mid-copy.
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2, BackfillMBps: 8})
	rng := rand.New(rand.NewSource(7))
	ios := 400
	failed := 0
	var issue func()
	issue = func() {
		if ios == 0 {
			return
		}
		ios--
		off := rng.Int63n(cl.DataSectors() - 8)
		if err := cl.Submit(core.Write, off, 8, false, func(r core.Result) {
			if r.Failed {
				failed++
			}
			issue()
		}); err != nil {
			t.Fatalf("synchronous rejection: %v", err)
		}
	}
	sim.At(2*des.Millisecond, func() { _ = cl.CrashBrick(0) })
	sim.At(20*des.Millisecond, func() { _ = cl.Brick(0).Recover() })
	// Backfill at 8 MB/s needs 32ms per 512-sector extent; crash again
	// while it is mid-queue, then recover for good.
	sim.At(80*des.Millisecond, func() {
		if cl.DivergencePending() == 0 {
			t.Error("backfill already done at second crash; slow it down")
		}
		_ = cl.CrashBrick(0)
	})
	sim.At(120*des.Millisecond, func() { _ = cl.Brick(0).Recover() })
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.Run()
	if failed != 0 {
		t.Fatalf("%d writes failed despite quorum", failed)
	}
	if !cl.Drain(des.Hour) {
		t.Fatal("cluster failed to drain after double crash")
	}
	ctr := cl.Counters()
	if ctr.Diverged != ctr.Backfilled+ctr.Abandoned {
		t.Fatalf("double crash broke reconciliation: Diverged=%d Backfilled=%d Abandoned=%d",
			ctr.Diverged, ctr.Backfilled, ctr.Abandoned)
	}
	if cl.DivergencePending() != 0 {
		t.Fatal("divergence entries left after final drain")
	}
	if ctr.Trips < 2 {
		t.Errorf("expected two breaker trips, got %d", ctr.Trips)
	}
}

// TestDeclareDead: a dead brick's log is abandoned, its extents are
// adopted by survivors and re-replicated, and reads keep working with the
// brick gone for good.
func TestDeclareDead(t *testing.T) {
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2, BackfillMBps: 512, Headroom: 0.4})
	rng := rand.New(rand.NewSource(8))
	ios := 300
	failed := 0
	var issue func()
	issue = func() {
		if ios == 0 {
			return
		}
		ios--
		off := rng.Int63n(cl.DataSectors() - 8)
		op := core.Read
		if rng.Float64() < 0.5 {
			op = core.Write
		}
		if err := cl.Submit(op, off, 8, false, func(r core.Result) {
			if r.Failed {
				failed++
			}
			issue()
		}); err != nil {
			t.Fatalf("synchronous rejection: %v", err)
		}
	}
	sim.At(2*des.Millisecond, func() { _ = cl.CrashBrick(1) })
	sim.At(20*des.Millisecond, func() {
		if err := cl.DeclareDead(1); err != nil {
			t.Errorf("DeclareDead: %v", err)
		}
		if err := cl.DeclareDead(1); err == nil {
			t.Error("second DeclareDead accepted")
		}
	})
	for i := 0; i < 4; i++ {
		issue()
	}
	sim.Run()
	if failed != 0 {
		t.Fatalf("%d requests failed despite replication", failed)
	}
	if !cl.Drain(des.Hour) {
		t.Fatal("cluster failed to drain after DeclareDead")
	}
	ctr := cl.Counters()
	if ctr.Adopted == 0 {
		t.Fatal("no replicas adopted from the dead brick")
	}
	if ctr.Diverged != ctr.Backfilled+ctr.Abandoned {
		t.Fatalf("DeclareDead broke reconciliation: Diverged=%d Backfilled=%d Abandoned=%d",
			ctr.Diverged, ctr.Backfilled, ctr.Abandoned)
	}
	if cl.DivergencePending() != 0 {
		t.Fatal("divergence entries left after adoption backfill")
	}
	// Every extent must have left the dead brick.
	for e := int64(0); e < cl.pm.extents; e++ {
		for _, b := range cl.Replicas(e) {
			if b == 1 {
				t.Fatalf("extent %d still placed on the dead brick", e)
			}
		}
	}
	// And the cluster still serves reads with brick 1 dark.
	done := false
	if err := cl.Submit(core.Read, 0, 8, false, func(r core.Result) {
		done = true
		if r.Failed {
			t.Errorf("post-death read failed: %v", r.Err)
		}
	}); err != nil {
		t.Fatalf("post-death read rejected: %v", err)
	}
	sim.Run()
	if !done {
		t.Fatal("post-death read never completed")
	}
}

// TestAllReplicasDownRejectsSync: once the router knows every replica of
// an extent is down, Submit rejects synchronously with ErrCrashed (the
// all-replicas-down 503); with any replica alive it never does.
func TestAllReplicasDownRejectsSync(t *testing.T) {
	// Everything runs on the virtual clock: recovery lands while the
	// half-open probe budget is still live.
	sim, cl := newTestCluster(t, 2, Options{Replicas: 2})
	sim.At(0, func() {
		_ = cl.CrashBrick(0)
		_ = cl.CrashBrick(1)
	})
	// The router has not seen a failure yet, so the first submission goes
	// out, fails everywhere (tripping both breakers inline), and completes
	// as a failed result.
	completed := false
	sim.At(des.Microsecond, func() {
		if err := cl.Submit(core.Read, 0, 8, false, func(r core.Result) {
			completed = true
			if !r.Failed || !errors.Is(r.Err, core.ErrCrashed) {
				t.Errorf("full-outage read completed as %+v", r)
			}
		}); err != nil {
			t.Fatalf("first submission rejected before the breaker could know: %v", err)
		}
	})
	// With both breakers Open, rejection is synchronous: the 503 semantic.
	sim.At(500*des.Microsecond, func() {
		if !completed {
			t.Fatal("first submission never resolved")
		}
		if err := cl.Submit(core.Read, 0, 8, false, nil); !errors.Is(err, core.ErrCrashed) {
			t.Fatalf("full outage returned %v, want ErrCrashed", err)
		}
		if cl.Counters().AllDown == 0 {
			t.Error("AllDown counter did not move")
		}
	})
	// One brick back: a half-open probe must rediscover it with no router
	// hint, and reads flow again.
	sim.At(des.Millisecond, func() { _ = cl.Brick(0).Recover() })
	ok := false
	sim.At(80*des.Millisecond, func() {
		if got := cl.State(0); got != Healthy {
			t.Fatalf("brick 0 %v after recovery; probe did not close the breaker", got)
		}
		if err := cl.Submit(core.Read, 0, 8, false, func(r core.Result) { ok = !r.Failed }); err != nil {
			t.Fatalf("submission rejected after probe recovery: %v", err)
		}
	})
	sim.Run()
	if !ok {
		t.Fatal("read failed after probe recovery")
	}
}

// TestVolumeSurface covers the aggregate core.Volume methods.
func TestVolumeSurface(t *testing.T) {
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2})
	if cl.Disks() != 6 {
		t.Errorf("Disks() = %d, want 6", cl.Disks())
	}
	if cl.Sim() != sim {
		t.Error("Sim() is not the router sim")
	}
	if cl.DataSectors() <= 0 || cl.DataSectors()%512 != 0 {
		t.Errorf("DataSectors() = %d", cl.DataSectors())
	}
	if cl.Crashed() {
		t.Error("fresh cluster reports crashed")
	}
	if !cl.Idle() {
		t.Error("fresh cluster not idle")
	}
	tun := cl.Tuning()
	tun.MaxQueueDepth = 64
	if err := cl.SetTuning(tun); err != nil {
		t.Fatalf("SetTuning: %v", err)
	}
	for i := 0; i < cl.Bricks(); i++ {
		if got := cl.Brick(i).Tuning().MaxQueueDepth; got != 64 {
			t.Errorf("brick %d MaxQueueDepth = %d after fan-out", i, got)
		}
	}
	if err := cl.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if !cl.Crashed() {
		t.Error("Crashed() false after Crash()")
	}
	if rec := cl.Recovery(); rec.Crashes != 3 {
		t.Errorf("Recovery().Crashes = %d, want 3", rec.Crashes)
	}
	if err := cl.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if cl.Crashed() {
		t.Error("Crashed() true after Recover()")
	}
	if !cl.Drain(des.Hour) {
		t.Fatal("Drain failed after crash cycle")
	}
}

// TestBatchSubmit covers the batch entry points, including index-aligned
// errors once a full outage is known.
func TestBatchSubmit(t *testing.T) {
	sim, cl := newTestCluster(t, 2, Options{Replicas: 2})
	n := 0
	ops := []core.BatchOp{
		{Op: core.Read, Off: 0, Count: 8, Done: func(core.Result) { n++ }},
		{Op: core.Write, Off: 600, Count: 8, Done: func(core.Result) { n++ }},
		{Op: core.Read, Off: 1200, Count: 8, Done: func(core.Result) { n++ }},
	}
	if got, err := cl.SubmitBatch(ops); err != nil || got != 3 {
		t.Fatalf("SubmitBatch = %d, %v", got, err)
	}
	sim.Run()
	if n != 3 {
		t.Fatalf("batch completed %d/3", n)
	}
	sim.At(sim.Now(), func() { _ = cl.Crash() })
	sim.Run()
	errs, ok := cl.SubmitBatchErrs(ops)
	if ok != 0 || errs == nil {
		t.Fatalf("SubmitBatchErrs on a dead cluster: ok=%d errs=%v", ok, errs)
	}
	for i, e := range errs {
		if !errors.Is(e, core.ErrCrashed) {
			t.Errorf("op %d error %v, want ErrCrashed", i, e)
		}
	}
}

// TestRangeValidation: out-of-range requests are rejected with a plain
// error (the 400 path), not ErrCrashed.
func TestRangeValidation(t *testing.T) {
	_, cl := newTestCluster(t, 2, Options{Replicas: 2})
	if err := cl.Submit(core.Read, -1, 8, false, nil); err == nil || errors.Is(err, core.ErrCrashed) {
		t.Errorf("negative offset: %v", err)
	}
	if err := cl.Submit(core.Read, cl.DataSectors()-4, 8, false, nil); err == nil || errors.Is(err, core.ErrCrashed) {
		t.Errorf("overrun: %v", err)
	}
	if err := cl.Submit(core.Read, 0, 0, false, nil); err == nil {
		t.Errorf("zero count accepted")
	}
}

// TestMultiExtentRequest spans several extents (exercising the piece spill
// path) and must complete as one logical request.
func TestMultiExtentRequest(t *testing.T) {
	sim, cl := newTestCluster(t, 3, Options{Replicas: 2, ExtentSectors: 64})
	var got *core.Result
	count := 64 * 3 // four pieces: tail of e0 through head of e3
	if err := cl.Submit(core.Write, 32, count, false, func(r core.Result) { got = &r }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if got == nil {
		t.Fatal("multi-extent write never completed")
	}
	if got.Failed || got.Count != count {
		t.Fatalf("multi-extent write: %+v", *got)
	}
}
