package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
)

// benchCluster builds a colocated 3-brick R=2 cluster for benchmarks.
func benchCluster(tb testing.TB) (*des.Sim, *Cluster) {
	tb.Helper()
	sim := des.New()
	bricks := make([]core.Volume, 3)
	for i := range bricks {
		a, err := core.New(sim, core.Options{
			Config: layout.Config{Ds: 1, Dr: 1, Dm: 2}, Seed: int64(i + 1),
			DataSectors: 1 << 13,
			Crash:       core.CrashModel{Enabled: true, Durability: core.BatteryBacked},
		})
		if err != nil {
			tb.Fatal(err)
		}
		bricks[i] = a
	}
	c, err := New(sim, bricks, Options{Replicas: 2, ExtentSectors: 512, Seed: 42})
	if err != nil {
		tb.Fatal(err)
	}
	return sim, c
}

// runOne submits one synchronous read and drives it to completion.
func runOne(tb testing.TB, sim *des.Sim, v core.Volume, off int64, done func(core.Result)) {
	if err := v.Submit(core.Read, off, 8, false, done); err != nil {
		tb.Fatalf("submit: %v", err)
	}
	sim.Run()
}

// TestRouterZeroAllocHealthyPath is the CI guard for the pooled hot path:
// after warmup, a read through the cluster router must allocate no more
// than the same read submitted straight to a brick — the router itself
// adds zero allocations per op.
func TestRouterZeroAllocHealthyPath(t *testing.T) {
	sim, cl := benchCluster(t)
	nop := func(core.Result) {}
	for i := int64(0); i < 200; i++ { // warm pools, caches, and EWMAs
		runOne(t, sim, cl, (i*37)%(cl.DataSectors()-8), nop)
	}
	direct := cl.Brick(0)
	var off int64
	clusterAllocs := testing.AllocsPerRun(100, func() {
		runOne(t, sim, cl, off, nop)
		off = (off + 37) % (cl.DataSectors() - 8)
	})
	off = 0
	directAllocs := testing.AllocsPerRun(100, func() {
		runOne(t, sim, direct, off, nop)
		off = (off + 37) % (direct.DataSectors() - 8)
	})
	if clusterAllocs > directAllocs {
		t.Fatalf("healthy-path router adds allocations: cluster %.2f/op vs direct %.2f/op",
			clusterAllocs, directAllocs)
	}
}

// BenchmarkClusterFailover measures the router's read path: straight to a
// brick, through a healthy cluster, and through a cluster with one brick
// down (every read routed around the Open breaker).
func BenchmarkClusterFailover(b *testing.B) {
	nop := func(core.Result) {}
	b.Run("direct", func(b *testing.B) {
		sim, cl := benchCluster(b)
		direct := cl.Brick(0)
		for i := int64(0); i < 100; i++ {
			runOne(b, sim, direct, (i*37)%(direct.DataSectors()-8), nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var off int64
		for i := 0; i < b.N; i++ {
			runOne(b, sim, direct, off, nop)
			off = (off + 37) % (direct.DataSectors() - 8)
		}
	})
	b.Run("healthy", func(b *testing.B) {
		sim, cl := benchCluster(b)
		for i := int64(0); i < 100; i++ {
			runOne(b, sim, cl, (i*37)%(cl.DataSectors()-8), nop)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var off int64
		for i := 0; i < b.N; i++ {
			runOne(b, sim, cl, off, nop)
			off = (off + 37) % (cl.DataSectors() - 8)
		}
	})
	b.Run("outage", func(b *testing.B) {
		sim, cl := benchCluster(b)
		sim.At(sim.Now(), func() { _ = cl.CrashBrick(1) })
		sim.Run()
		// Warm until the breaker is Open and the probe budget is spent, so
		// the steady state is pure routed-around reads.
		for i := int64(0); i < 200; i++ {
			runOne(b, sim, cl, (i*37)%(cl.DataSectors()-8), nop)
		}
		if cl.State(1) != Open {
			b.Fatal("brick 1 breaker not open at steady state")
		}
		b.ReportAllocs()
		b.ResetTimer()
		var off int64
		for i := 0; i < b.N; i++ {
			runOne(b, sim, cl, off, nop)
			off = (off + 37) % (cl.DataSectors() - 8)
		}
	})
}
