package cluster

import (
	"errors"

	"repro/internal/core"
	"repro/internal/des"
)

// The per-brick circuit breaker keeps the router from paying a timeout (or
// an outage-long stall) on every request to a dead brick. Each brick walks
// a three-state machine on the router's shard:
//
//	Healthy — full traffic. Failures are counted; ErrCrashed or a run of
//	  consecutive failures trips the breaker straight to Open.
//	Suspect — the brick still serves traffic but is deprioritized: reads
//	  prefer Healthy replicas, and (with HedgeAfter set) a read that does
//	  land on a Suspect brick arms a cross-brick hedge. Entered on any
//	  failure or when the brick's latency EWMA runs SuspectFactor above
//	  the cluster-wide EWMA; left when the EWMA settles back under
//	  ReturnFactor or a clean run of traffic completes.
//	Open — no traffic is routed to the brick at all. Entered on
//	  ErrCrashed or FailThreshold consecutive failures. While Open the
//	  router sends half-open probes on the virtual clock with doubling
//	  backoff; a probe that completes closes the breaker (and starts the
//	  brick's backfill), a failed probe re-arms the next one.
//
// All transitions run on the router shard — brick results arrive there as
// messages — so the machine is deterministic under any worker count.
type Health int

const (
	// Healthy routes normally.
	Healthy Health = iota
	// Suspect routes, deprioritized, and hedges.
	Suspect
	// Open routes nothing; half-open probes test the brick.
	Open
)

// String names the state for digests and tests.
func (s Health) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Open:
		return "open"
	default:
		return "?"
	}
}

// ewmaAlpha is the smoothing constant of the latency trackers: ~1/16 of
// each new sample, matching the drive-level health tracker's horizon.
const ewmaAlpha = 1.0 / 16

// brickState is one brick's router-side bookkeeping: breaker, latency
// tracker, probe schedule, and divergence log.
type brickState struct {
	state Health
	// dead marks a brick removed by DeclareDead: permanently Open, no
	// probes, no placements.
	dead bool

	consecFails int
	ewmaNs      float64
	samples     int64

	probeArmed   bool
	probeBackoff des.Time
	probeTries   int

	// div is the divergence log: extents whose replica on this brick
	// missed writes during an outage. divQ preserves first-diverged order
	// (the deterministic backfill order); cleared entries stay in divQ and
	// are skipped on pop.
	div  map[int64]*divEntry
	divQ []int64

	backfillActive bool
	backfillNext   des.Time
}

// divEntry tracks one stale extent on one brick.
type divEntry struct {
	// gen increments on every client write that had to skip this replica
	// while the entry was pending; a backfill copy snapshots gen at its
	// read and re-copies if it changed by the time the write lands.
	gen uint32
	// copying marks an in-flight backfill copy (the entry must not be
	// popped twice).
	copying bool
}

// noteSuccess feeds one successful brick completion into the breaker.
func (c *Cluster) noteSuccess(b int, lat des.Time) {
	st := &c.br[b]
	st.consecFails = 0
	ns := float64(lat) * 1000
	st.samples++
	if st.samples == 1 {
		st.ewmaNs = ns
	} else {
		st.ewmaNs += ewmaAlpha * (ns - st.ewmaNs)
	}
	c.allSamples++
	if c.allSamples == 1 {
		c.allEwmaNs = ns
	} else {
		c.allEwmaNs += ewmaAlpha * (ns - c.allEwmaNs)
	}
	if st.dead {
		return
	}
	switch st.state {
	case Healthy:
		if st.samples >= int64(c.opts.EWMASamples) && c.allSamples >= int64(c.opts.EWMASamples) &&
			st.ewmaNs > c.opts.SuspectFactor*c.allEwmaNs {
			st.state = Suspect
			c.ctr.Suspects++
		}
	case Suspect:
		if st.ewmaNs <= c.opts.ReturnFactor*c.allEwmaNs {
			st.state = Healthy
		}
	}
}

// noteFailure feeds one failed brick interaction (sync submit error or
// failed completion) into the breaker. ErrOverload is backpressure, not
// brick damage, and never moves the state machine.
func (c *Cluster) noteFailure(b int, err error) {
	st := &c.br[b]
	if errors.Is(err, core.ErrOverload) {
		return
	}
	if errors.Is(err, core.ErrCrashed) {
		c.trip(b)
		return
	}
	st.consecFails++
	if st.consecFails >= c.opts.FailThreshold {
		c.trip(b)
		return
	}
	if st.state == Healthy && !st.dead {
		st.state = Suspect
		c.ctr.Suspects++
	}
}

// trip opens the breaker and arms the first half-open probe.
func (c *Cluster) trip(b int) {
	st := &c.br[b]
	if st.state == Open {
		return
	}
	st.state = Open
	st.consecFails = 0
	c.ctr.Trips++
	if st.dead {
		return
	}
	st.probeBackoff = c.opts.ProbeAfter
	st.probeTries = 0
	c.armProbe(b)
}

// armProbe schedules the next half-open probe on the virtual clock.
func (c *Cluster) armProbe(b int) {
	st := &c.br[b]
	if st.probeArmed || st.dead || st.probeTries >= c.opts.ProbeTries {
		return
	}
	st.probeArmed = true
	at := c.rsim().Now() + st.probeBackoff
	c.rsim().At(at, func() { c.probe(b) })
}

// probe issues one half-open read against the brick. The probe is a real
// request through the normal link — in sharded mode it crosses to the
// brick's shard and back — so a "healthy" verdict means the data path
// works, not just that a flag flipped.
func (c *Cluster) probe(b int) {
	st := &c.br[b]
	st.probeArmed = false
	if st.dead || st.state != Open {
		return
	}
	st.probeTries++
	c.ctr.Probes++
	count := int(c.pm.extentSectors)
	if count > 8 {
		count = 8
	}
	c.brickSubmit(b, core.Read, 0, count, func(ok bool, err error) {
		if ok {
			c.closeBreaker(b)
			return
		}
		c.ctr.ProbeFails++
		st := &c.br[b]
		st.probeBackoff *= 2
		if st.probeBackoff > c.opts.ProbeMax {
			st.probeBackoff = c.opts.ProbeMax
		}
		c.armProbe(b)
	})
}

// closeBreaker returns an Open brick to service (probe success, or an
// explicit RecoverBrick) and kicks its backfill.
func (c *Cluster) closeBreaker(b int) {
	st := &c.br[b]
	if st.dead || st.state != Open {
		return
	}
	// Re-enter Healthy with fresh latency trackers: the outage's stalled
	// completions must not poison the EWMA and re-Suspect a working brick.
	st.state = Healthy
	st.consecFails = 0
	st.ewmaNs = 0
	st.samples = 0
	// Kick every serviceable brick's backfill, not just this one: a
	// parked backfill elsewhere may have been waiting for this brick to
	// come back as its copy source.
	for nb := range c.br {
		if s := &c.br[nb]; !s.dead && s.state != Open {
			c.startBackfill(nb)
		}
	}
}
