package cluster

import (
	"fmt"
	"math"
)

// The extent map is the cluster's placement layer: the logical volume is
// divided into fixed-size extents, and each extent's R replicas live on R
// *distinct* bricks — the brick is the failure domain, so losing one brick
// loses at most one replica of any extent. Brick selection uses weighted
// rendezvous hashing (highest-random-weight): every (extent, brick) pair
// draws a deterministic score from the placement seed, scaled by the
// brick's capacity weight, and the R best-scoring bricks win the extent.
// Rendezvous gives three properties the cluster needs at once: placement
// is a pure function of (seed, extent) so every router instance computes
// the same map with no coordination; heterogeneous bricks receive extents
// in proportion to their weights (the HDA paper's capacity-proportional
// allocation); and when a brick is declared dead, each of its extents has
// a canonical "next best" brick — the rendezvous runner-up — so
// re-replication needs no global reshuffle.
//
// Brick-local addresses come from a slot allocator: walking extents in
// order, each replica claims the target brick's next free slot, so the
// brick-local offset of (extent, replica) is fixed at construction. With a
// single brick and R=1 this degenerates to the identity map (extent e at
// slot e), which is what keeps a one-brick cluster byte-identical to the
// bare array underneath it.

// replicaLoc is one replica's physical address: a brick and a slot (the
// brick-local offset is slot*ExtentSectors). brick < 0 means the replica
// is unplaced (capacity exhausted, or its brick was declared dead with no
// surviving brick able to adopt it).
type replicaLoc struct {
	brick int32
	slot  int32
}

const unplaced = int32(-1)

// extentMap holds the full placement: loc[e*r+k] is replica k of extent e.
type extentMap struct {
	extentSectors int64
	extents       int64
	r             int
	loc           []replicaLoc
	// slots[b] is brick b's slot capacity; nextSlot[b] the allocation
	// cursor. Slots past the cursor are the headroom DeclareDead's
	// re-replication draws from.
	slots    []int32
	nextSlot []int32
	weights  []float64
	seed     int64
}

// splitmix64 is the mixing function behind the rendezvous draws — a
// well-known finalizer with full avalanche, so adjacent (extent, brick)
// pairs decorrelate completely.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// score draws brick b's rendezvous score for extent e: -ln(u)/w, u uniform
// in (0,1). Lower is better; the division by the weight makes the win
// probability proportional to w (weighted rendezvous, Thaler & Ravishankar).
func (m *extentMap) score(e int64, b int) float64 {
	h := splitmix64(uint64(m.seed)*0x9e3779b97f4a7c15 + splitmix64(uint64(e)<<20|uint64(b)))
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -math.Log(u) / m.weights[b]
}

// rank returns every brick ordered by rendezvous preference for extent e
// (best first), writing into dst to stay allocation-free after warmup.
func (m *extentMap) rank(e int64, dst []int) []int {
	dst = dst[:0]
	for b := range m.slots {
		dst = append(dst, b)
	}
	scores := make([]float64, len(m.slots))
	for b := range scores {
		scores[b] = m.score(e, b)
	}
	// Insertion sort: brick counts are small and the order must be a total
	// order (score ties broken by index) for determinism.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0; j-- {
			a, b := dst[j-1], dst[j]
			if scores[a] < scores[b] || (scores[a] == scores[b] && a < b) {
				break
			}
			dst[j-1], dst[j] = b, a
		}
	}
	return dst
}

// buildExtentMap allocates the placement for the given brick capacities
// (in sectors). headroom in [0,1) reserves that fraction of the total slot
// pool for post-failure re-replication.
func buildExtentMap(capacity []int64, weights []float64, r int, extentSectors int64, headroom float64, seed int64) (*extentMap, error) {
	if r < 1 || r > maxReplicas {
		return nil, fmt.Errorf("cluster: %d replicas (want 1..%d)", r, maxReplicas)
	}
	if len(capacity) < r {
		return nil, fmt.Errorf("cluster: %d replicas over %d bricks (need distinct bricks)", r, len(capacity))
	}
	if extentSectors < 1 {
		return nil, fmt.Errorf("cluster: extent size %d sectors (want >= 1)", extentSectors)
	}
	m := &extentMap{
		extentSectors: extentSectors, r: r, seed: seed,
		slots:    make([]int32, len(capacity)),
		nextSlot: make([]int32, len(capacity)),
		weights:  make([]float64, len(capacity)),
	}
	var total int64
	for b, cap := range capacity {
		s := cap / extentSectors
		if s < 1 {
			return nil, fmt.Errorf("cluster: brick %d holds %d sectors, less than one %d-sector extent", b, cap, extentSectors)
		}
		m.slots[b] = int32(s)
		total += s
		m.weights[b] = float64(s)
	}
	if weights != nil {
		if len(weights) != len(capacity) {
			return nil, fmt.Errorf("cluster: %d weights for %d bricks", len(weights), len(capacity))
		}
		for b, w := range weights {
			if w <= 0 {
				return nil, fmt.Errorf("cluster: brick %d weight %g (want > 0)", b, w)
			}
			m.weights[b] = w
		}
	}
	m.extents = int64(float64(total)*(1-headroom)) / int64(r)
	if m.extents < 1 {
		return nil, fmt.Errorf("cluster: capacity %d slots cannot hold one extent at %d replicas", total, r)
	}
	m.loc = make([]replicaLoc, m.extents*int64(r))
	var order []int
	for e := int64(0); e < m.extents; e++ {
		order = m.rank(e, order)
		placed := 0
		for _, b := range order {
			if placed == r {
				break
			}
			if m.nextSlot[b] >= m.slots[b] {
				continue // brick full: spill to the next rendezvous choice
			}
			m.loc[e*int64(r)+int64(placed)] = replicaLoc{brick: int32(b), slot: m.nextSlot[b]}
			m.nextSlot[b]++
			placed++
		}
		if placed == 0 {
			return nil, fmt.Errorf("cluster: extent %d unplaceable (capacity exhausted)", e)
		}
		for k := placed; k < r; k++ {
			m.loc[e*int64(r)+int64(k)] = replicaLoc{brick: unplaced}
		}
	}
	return m, nil
}

// locOf returns replica k of extent e.
func (m *extentMap) locOf(e int64, k int) replicaLoc { return m.loc[e*int64(m.r)+int64(k)] }

// brickOff converts a replica location plus an intra-extent offset to the
// brick-local sector address.
func (m *extentMap) brickOff(l replicaLoc, within int64) int64 {
	return int64(l.slot)*m.extentSectors + within
}

// adopt reassigns replica k of extent e to the best surviving brick that
// does not already hold the extent and still has a free slot. It returns
// the new brick, or -1 if no brick qualifies.
func (m *extentMap) adopt(e int64, k int, excluded func(b int) bool) int {
	order := m.rank(e, nil)
	for _, b := range order {
		if excluded(b) || m.nextSlot[b] >= m.slots[b] {
			continue
		}
		holds := false
		for j := 0; j < m.r; j++ {
			if l := m.locOf(e, j); l.brick == int32(b) {
				holds = true
				break
			}
		}
		if holds {
			continue
		}
		m.loc[e*int64(m.r)+int64(k)] = replicaLoc{brick: int32(b), slot: m.nextSlot[b]}
		m.nextSlot[b]++
		return b
	}
	m.loc[e*int64(m.r)+int64(k)] = replicaLoc{brick: unplaced}
	return -1
}
