package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// Backfill is the cluster's re-replication path: every extent replica that
// missed writes during an outage (or was adopted empty by a survivor after
// DeclareDead) sits in its brick's divergence log until a paced background
// copy — read the extent from a fresh replica, write it to the stale one —
// clears it. Pacing uses the same discipline as rebuild, scrub, and the
// recovery scan: copies start at BackfillMBps-spaced instants on the
// virtual clock, so backfill competes for bandwidth like any other
// background class instead of flooding a just-recovered brick.
//
// The log's lifecycle invariant is exact: every entry ever created
// terminates as precisely one of backfilled or abandoned, so after the
// cluster drains,
//
//	Counters.Diverged == Counters.Backfilled + Counters.Abandoned
//
// always reconciles. Client writes that arrive while an extent is being
// copied dirty the entry (a generation bump); the copy observes the bump
// when its write lands and re-copies, so a cleared entry is always fresh.

// diverge logs extent e stale on brick b (idempotent while pending).
func (c *Cluster) diverge(b int, e int64) {
	st := &c.br[b]
	if _, ok := st.div[e]; ok {
		return
	}
	st.div[e] = &divEntry{}
	st.divQ = append(st.divQ, e)
	c.ctr.Diverged++
}

// backfillInterval is the pacing gap between extent copies.
func (c *Cluster) backfillInterval() des.Time {
	bytes := float64(c.pm.extentSectors) * 512
	return des.Time(bytes / c.opts.BackfillMBps) // bytes / (MB/s * 1e6) s == bytes/MBps us
}

// startBackfill begins (or resumes) brick b's paced backfill after its
// breaker closes.
func (c *Cluster) startBackfill(b int) {
	st := &c.br[b]
	if st.backfillActive || st.dead || len(st.div) == 0 {
		return
	}
	st.backfillActive = true
	now := c.rsim().Now()
	if st.backfillNext < now {
		st.backfillNext = now
	}
	c.rsim().At(st.backfillNext, func() { c.backfillStep(b) })
}

// backfillStep copies the next pending extent onto brick b. One extent per
// pacing interval: the next step is armed only after this copy resolves.
func (c *Cluster) backfillStep(b int) {
	st := &c.br[b]
	if !st.backfillActive {
		return
	}
	if st.dead || st.state == Open {
		// The brick went away again mid-backfill (the double-crash case):
		// park with every remaining entry intact; the next recovery (or
		// DeclareDead) takes over.
		st.backfillActive = false
		return
	}
	var e int64
	found := false
	for len(st.divQ) > 0 {
		e = st.divQ[0]
		st.divQ = st.divQ[1:]
		if ent, ok := st.div[e]; ok && !ent.copying {
			found = true
			break
		}
	}
	if !found {
		st.backfillActive = false
		return
	}
	st.div[e].copying = true
	c.copyExtent(b, e, st.div[e].gen)
}

// copyExtent runs one extent copy: read from a fresh replica, write to the
// stale one, then settle the entry.
func (c *Cluster) copyExtent(b int, e int64, gen uint32) {
	src := c.freshSource(e, b)
	if src < 0 {
		if !c.sourceMayReturn(e, b) {
			// Every other replica is dead or unplaced: this copy can never
			// be sourced. Write the entry off instead of retrying forever.
			st := &c.br[b]
			if _, ok := st.div[e]; ok {
				delete(st.div, e)
				c.ctr.Abandoned++
			}
			c.paceNext(b)
			return
		}
		// A potential source is merely Open — it may come back. Park this
		// brick's backfill with the entry pending; the source's breaker
		// closing will kick every parked backfill awake.
		st := &c.br[b]
		if ent, ok := st.div[e]; ok {
			ent.copying = false
			st.divQ = append(st.divQ, e)
		}
		st.backfillActive = false
		return
	}
	srcOff := c.pm.brickOff(c.locOn(e, src), 0)
	n := int(c.pm.extentSectors)
	c.brickSubmit(src, core.Read, srcOff, n, func(ok bool, err error) {
		if !ok {
			c.noteFailure(src, err)
			c.settleCopy(b, e, gen, false, err)
			return
		}
		st := &c.br[b]
		if st.dead || st.state == Open {
			c.settleCopy(b, e, gen, false, core.ErrCrashed)
			return
		}
		dst := c.locOn(e, b)
		if dst.brick != int32(b) {
			// The extent moved off this brick while the read was in
			// flight (DeclareDead raced the copy); drop the work.
			c.settleCopy(b, e, gen, false, nil)
			return
		}
		c.brickSubmit(b, core.Write, c.pm.brickOff(dst, 0), n, func(ok bool, err error) {
			if !ok {
				c.noteFailure(b, err)
			}
			c.settleCopy(b, e, gen, ok, err)
		})
	})
}

// settleCopy resolves one finished (or aborted) extent copy and paces the
// next step.
func (c *Cluster) settleCopy(b int, e int64, gen uint32, ok bool, err error) {
	st := &c.br[b]
	ent, live := st.div[e]
	if live {
		ent.copying = false
		switch {
		case !ok:
			// Failed copy: the entry stays pending for the next recovery
			// (or abandonment). Requeue it behind the survivors.
			st.divQ = append(st.divQ, e)
		case ent.gen != gen:
			// A client write dirtied the extent mid-copy: go around again.
			c.ctr.Recopies++
			st.divQ = append(st.divQ, e)
		default:
			delete(st.div, e)
			c.ctr.Backfilled++
		}
	}
	c.paceNext(b)
}

// paceNext arms brick b's next backfill step one pacing interval out, or
// parks the loop when nothing (or no route) remains.
func (c *Cluster) paceNext(b int) {
	st := &c.br[b]
	if st.dead || st.state == Open || len(st.div) == 0 {
		st.backfillActive = false
		return
	}
	st.backfillNext = c.rsim().Now() + c.backfillInterval()
	c.rsim().At(st.backfillNext, func() { c.backfillStep(b) })
}

// sourceMayReturn reports whether any replica of e other than b's sits on
// a brick that could ever serve again (placed and not declared dead).
func (c *Cluster) sourceMayReturn(e int64, b int) bool {
	for k := 0; k < c.pm.r; k++ {
		l := c.pm.locOf(e, k)
		if l.brick < 0 || int(l.brick) == b {
			continue
		}
		if !c.br[l.brick].dead {
			return true
		}
	}
	return false
}

// freshSource picks the best brick holding a fresh replica of extent e,
// excluding brick `not`: Healthy preferred, then Suspect, placement order
// breaking ties. Returns -1 when no fresh replica is reachable.
func (c *Cluster) freshSource(e int64, not int) int {
	for pass := 0; pass < 2; pass++ {
		want := Healthy
		if pass == 1 {
			want = Suspect
		}
		for k := 0; k < c.pm.r; k++ {
			l := c.pm.locOf(e, k)
			if l.brick < 0 || int(l.brick) == not {
				continue
			}
			st := &c.br[l.brick]
			if st.dead || st.state != want {
				continue
			}
			if _, stale := st.div[e]; stale {
				continue
			}
			return int(l.brick)
		}
	}
	return -1
}

// locOn returns extent e's replica location on brick b (zero replicaLoc
// with brick -1 if the brick no longer holds it).
func (c *Cluster) locOn(e int64, b int) replicaLoc {
	for k := 0; k < c.pm.r; k++ {
		if l := c.pm.locOf(e, k); int(l.brick) == b {
			return l
		}
	}
	return replicaLoc{brick: unplaced}
}

// DeclareDead removes brick b from the cluster permanently: its breaker is
// parked Open, its pending divergence entries are written off as
// Abandoned, and every extent replica it held is adopted by the best
// surviving brick with headroom (becoming a fresh divergence entry there,
// cleared by that brick's backfill). Colocated and sharded topologies
// alike — DeclareDead is pure router state plus background copies.
func (c *Cluster) DeclareDead(b int) error {
	if b < 0 || b >= len(c.bs) {
		return fmt.Errorf("%w: DeclareDead(%d) with %d bricks", core.ErrDriveIndex, b, len(c.bs))
	}
	st := &c.br[b]
	if st.dead {
		return fmt.Errorf("cluster: brick %d already declared dead", b)
	}
	st.dead = true
	if st.state != Open {
		st.state = Open
		c.ctr.Trips++
	}
	st.backfillActive = false
	// Abandon the dead brick's own log: those copies will never land.
	for _, e := range st.divQ {
		if _, ok := st.div[e]; ok {
			delete(st.div, e)
			c.ctr.Abandoned++
		}
	}
	st.divQ = st.divQ[:0]
	// Re-replicate: walk extents in order (determinism) and hand each of
	// the dead brick's replicas to the rendezvous runner-up.
	for e := int64(0); e < c.pm.extents; e++ {
		for k := 0; k < c.pm.r; k++ {
			if c.pm.locOf(e, k).brick != int32(b) {
				continue
			}
			nb := c.pm.adopt(e, k, func(x int) bool { return c.br[x].dead })
			if nb < 0 {
				c.ctr.Unplaced++
				continue
			}
			c.ctr.Adopted++
			// The adopted slot holds nothing yet: it is divergent by
			// construction and backfills like any outage entry.
			c.diverge(nb, e)
		}
	}
	for nb := range c.br {
		if !c.br[nb].dead && c.br[nb].state != Open {
			c.startBackfill(nb)
		}
	}
	return nil
}
