// Package cluster turns N brick arrays into one replicated volume. A
// Cluster implements core.Volume over bricks that are themselves
// core.Volumes (normally *core.Array): logical extents are placed on R
// distinct bricks by a weighted rendezvous extent map, reads fail over
// across surviving replicas behind a per-brick circuit breaker, writes
// quorum onto whatever replicas are up and log the rest as divergence, and
// a paced backfill re-replicates stale extents when a brick returns (or a
// dead brick's extents onto survivors). The brick is the failure domain:
// everything one array's tolerance stack survives (drive loss, fail-slow,
// corruption), the cluster extends to the loss of the whole brick.
//
// A Cluster runs in one of two topologies:
//
//   - Colocated (New): the router and every brick share one des.Sim.
//     Submissions are direct calls, the healthy path recycles pooled
//     request objects and adds zero allocations over submitting to the
//     brick directly, and the Cluster is a fully functional core.Volume —
//     this is what the service gateway fronts.
//
//   - Sharded (NewSharded): the router lives on shard 0 of a des.Sharded
//     engine and each brick on its own shard, with every crossing paying
//     the link latency (which must be >= the engine's lookahead). Submit
//     must be called from shard-0 events; Drain is unavailable (the caller
//     owns the engine's run loop) and aggregate accessors are only
//     meaningful while the engine is quiescent.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// maxReplicas bounds R so per-piece replica state (and the cached
// completion closures the pooled fast path needs) can live inline.
const maxReplicas = 4

// SendFunc ships fn from the sender's shard to the receiver's, to run at
// the given absolute instant (des.Sharded.Send's shape).
type SendFunc func(from, to int, at des.Time, fn func())

// Options configures a Cluster.
type Options struct {
	// Replicas is R, the cross-brick replication factor (1..maxReplicas).
	// 1 means routing without redundancy: the extent map shards the volume
	// but a brick outage is client-visible, exactly as before the cluster
	// existed.
	Replicas int
	// ExtentSectors is the placement granularity (default 4096 sectors).
	ExtentSectors int64
	// Seed feeds the rendezvous hash; the extent map is a pure function of
	// (Seed, brick capacities, Weights, Replicas, ExtentSectors).
	Seed int64
	// Weights override the capacity-proportional rendezvous weights
	// (len == bricks, all > 0). nil weights each brick by its slot count.
	Weights []float64
	// Headroom reserves this fraction of the slot pool for DeclareDead
	// re-replication (default 1/16; the capacity side of the tradeoff).
	// Negative means exactly zero headroom — the full slot pool holds
	// extents, which is what makes a one-brick R=1 cluster address- and
	// size-identical to the bare brick.
	Headroom float64

	// FailThreshold trips the breaker after this many consecutive
	// failures (default 3); ErrCrashed trips it immediately.
	FailThreshold int
	// SuspectFactor marks a brick Suspect when its latency EWMA exceeds
	// SuspectFactor times the cluster-wide EWMA (default 3); ReturnFactor
	// readmits it below that multiple (default 1.5).
	SuspectFactor float64
	ReturnFactor  float64
	// EWMASamples is the minimum samples (per brick and cluster-wide)
	// before latency judgments engage (default 16).
	EWMASamples int
	// ProbeAfter is the first half-open probe delay after a trip (default
	// 2ms), doubling per failed probe up to ProbeMax (default 20ms), for
	// at most ProbeTries probes (default 64) before the brick is parked
	// Open until RecoverBrick or DeclareDead.
	ProbeAfter des.Time
	ProbeMax   des.Time
	ProbeTries int
	// HedgeAfter arms a cross-brick hedge when a read lands on a Suspect
	// brick and another replica is available: if the read has not
	// completed after HedgeAfter, a duplicate goes to the next replica and
	// the first completion wins. 0 disables hedging.
	HedgeAfter des.Time
	// RetryBackoff delays each read failover hop (default 0: immediate).
	RetryBackoff des.Time
	// BackfillMBps paces backfill and re-replication copies, the same
	// bandwidth discipline as rebuild and scrub (default 32 MB/s).
	BackfillMBps float64
}

func (o *Options) fill() {
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	if o.ExtentSectors == 0 {
		o.ExtentSectors = 4096
	}
	if o.Headroom == 0 {
		o.Headroom = 1.0 / 16
	} else if o.Headroom < 0 {
		o.Headroom = 0
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = 3
	}
	if o.SuspectFactor == 0 {
		o.SuspectFactor = 3
	}
	if o.ReturnFactor == 0 {
		o.ReturnFactor = 1.5
	}
	if o.EWMASamples == 0 {
		o.EWMASamples = 16
	}
	if o.ProbeAfter == 0 {
		o.ProbeAfter = 2 * des.Millisecond
	}
	if o.ProbeMax == 0 {
		o.ProbeMax = 20 * des.Millisecond
	}
	if o.ProbeTries == 0 {
		o.ProbeTries = 64
	}
	if o.BackfillMBps == 0 {
		o.BackfillMBps = 32
	}
}

// Counters is the cluster's own accounting, alongside the per-brick
// counters the bricks keep. After every outage has been recovered or
// declared dead and backfill has drained, Diverged == Backfilled +
// Abandoned reconciles exactly — every divergence-log entry terminates
// exactly one way.
type Counters struct {
	// ReadFailovers counts read attempts rerouted to another replica after
	// a failure; AllDown counts submissions rejected synchronously with
	// ErrCrashed because no replica of some extent was reachable.
	ReadFailovers int64
	AllDown       int64
	// Hedges/HedgeWins count cross-brick hedged reads (a duplicate issued
	// against a Suspect brick's read) and the subset that answered first.
	Hedges    int64
	HedgeWins int64
	// Trips counts Healthy/Suspect → Open transitions; Suspects counts
	// entries into Suspect; Probes/ProbeFails count half-open probes.
	Trips      int64
	Suspects   int64
	Probes     int64
	ProbeFails int64
	// Diverged counts divergence-log entries created (an extent replica
	// that missed a write, or a dead brick's extent adopted empty by a
	// survivor); Backfilled counts entries cleared by a completed copy;
	// Abandoned counts entries written off (their brick was declared dead,
	// or no fresh source survives). Recopies counts extra copy rounds
	// forced by client writes dirtying an extent mid-copy.
	Diverged   int64
	Backfilled int64
	Abandoned  int64
	Recopies   int64
	// Adopted counts dead-brick replicas reassigned to a survivor;
	// Unplaced counts those no survivor could adopt (headroom exhausted).
	Adopted  int64
	Unplaced int64
}

// Cluster is a replicated volume over brick arrays. It implements
// core.Volume.
type Cluster struct {
	sims []*des.Sim // sims[0] = router; sims[1+b] = brick b
	send SendFunc   // nil in colocated mode
	lat  des.Time
	bs   []core.Volume
	opts Options
	pm   *extentMap
	br   []brickState
	ctr  Counters

	allEwmaNs  float64
	allSamples int64

	pending int // in-flight logical requests
	free    *request
}

// New builds a colocated cluster: every brick must live on sim, and the
// router schedules on it too.
func New(sim *des.Sim, bricks []core.Volume, opts Options) (*Cluster, error) {
	sims := make([]*des.Sim, len(bricks)+1)
	sims[0] = sim
	for i, b := range bricks {
		if b.Sim() != sim {
			return nil, fmt.Errorf("cluster: brick %d lives on a different sim (want NewSharded for a sharded topology)", i)
		}
		sims[1+i] = sim
	}
	return build(sims, nil, 0, bricks, opts)
}

// NewSharded builds a sharded cluster: the router on sims[0], brick b on
// sims[1+b] (which must be bricks[b].Sim()), every crossing sent through
// send at +lat. lat must satisfy the engine's lookahead bound.
func NewSharded(sims []*des.Sim, send SendFunc, lat des.Time, bricks []core.Volume, opts Options) (*Cluster, error) {
	if len(sims) != len(bricks)+1 {
		return nil, fmt.Errorf("cluster: %d sims for %d bricks (want bricks+1)", len(sims), len(bricks))
	}
	if send == nil || lat <= 0 {
		return nil, fmt.Errorf("cluster: sharded topology needs a send function and a positive link latency")
	}
	for i, b := range bricks {
		if b.Sim() != sims[1+i] {
			return nil, fmt.Errorf("cluster: brick %d is not on sims[%d]", i, 1+i)
		}
	}
	return build(sims, send, lat, bricks, opts)
}

func build(sims []*des.Sim, send SendFunc, lat des.Time, bricks []core.Volume, opts Options) (*Cluster, error) {
	if len(bricks) == 0 {
		return nil, fmt.Errorf("cluster: no bricks")
	}
	opts.fill()
	caps := make([]int64, len(bricks))
	for i, b := range bricks {
		caps[i] = b.DataSectors()
	}
	pm, err := buildExtentMap(caps, opts.Weights, opts.Replicas, opts.ExtentSectors, opts.Headroom, opts.Seed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sims: sims, send: send, lat: lat, bs: bricks, opts: opts, pm: pm,
		br: make([]brickState, len(bricks)),
	}
	for i := range c.br {
		c.br[i].div = make(map[int64]*divEntry)
	}
	return c, nil
}

func (c *Cluster) rsim() *des.Sim { return c.sims[0] }

// brickSubmit routes one raw brick I/O (probe or backfill copy) over the
// link and reports the outcome back on the router shard. Allocation here
// is fine: probes and copies are failure/background paths.
func (c *Cluster) brickSubmit(b int, op core.Op, off int64, count int, done func(ok bool, err error)) {
	brick := c.bs[b]
	if c.send == nil {
		err := brick.Submit(op, off, count, false, func(r core.Result) {
			done(!r.Failed, r.Err)
		})
		if err != nil {
			done(false, err)
		}
		return
	}
	bsim := c.sims[1+b]
	c.send(0, 1+b, c.rsim().Now()+c.lat, func() {
		err := brick.Submit(op, off, count, false, func(r core.Result) {
			ok, rerr := !r.Failed, r.Err
			c.send(1+b, 0, bsim.Now()+c.lat, func() { done(ok, rerr) })
		})
		if err != nil {
			c.send(1+b, 0, bsim.Now()+c.lat, func() { done(false, err) })
		}
	})
}

// --- request / piece pool -------------------------------------------------

// inlinePieces is the per-request inline piece capacity; requests spanning
// more extents spill to an allocated slice (rare for small I/O against
// large extents) and skip the pool on release.
const inlinePieces = 2

// request is one logical cluster I/O in flight.
type request struct {
	c    *Cluster
	next *request // pool free list

	op     core.Op
	off    int64
	count  int
	async  bool
	submit des.Time
	done   func(core.Result)

	// remaining counts pieces without a logical outcome; inflight counts
	// outstanding brick callbacks (hedge losers included). The request
	// completes at remaining==0 and recycles at inflight==0.
	remaining int
	inflight  int
	failed    bool
	err       error
	reported  bool

	pieces [inlinePieces]piece
	extra  []piece
}

// piece is one extent-aligned fragment of a request.
type piece struct {
	req *request
	ext int64
	// within/count locate the fragment inside the extent.
	within int64
	count  int

	// seq guards timer closures (hedges, retry backoff) against piece
	// recycling; bumped every time the piece is re-initialized.
	seq uint64

	done  bool
	tried [maxReplicas]bool
	// hedgeK is the replica slot of the piece's hedge attempt (-1 when
	// none), so a winning hedge can be credited.
	hedgeK int8

	// write fan-out state.
	pendingAcks int8
	okAcks      int8
	firstErr    error

	// repDone[k] is the cached completion closure for replica slot k —
	// created once per pooled piece, so the healthy path allocates
	// nothing.
	repDone [maxReplicas]func(core.Result)
}

func (c *Cluster) getReq() *request {
	r := c.free
	if r != nil {
		c.free = r.next
		r.next = nil
		return r
	}
	r = &request{c: c}
	for i := range r.pieces {
		p := &r.pieces[i]
		p.req = r
		for k := 0; k < maxReplicas; k++ {
			k := k
			p.repDone[k] = func(res core.Result) { p.replicaDone(k, res) }
		}
	}
	return r
}

func (c *Cluster) putReq(r *request) {
	if r.extra != nil {
		return // spilled requests go to the garbage collector
	}
	r.done = nil
	r.err = nil
	r.next = c.free
	c.free = r
}

// newPiece hands out piece i of a request, spilling past the inline array.
// The spill slice is sized once per request (in Submit) and must never
// grow: the cached closures capture piece addresses.
func (r *request) newPiece(i int) *piece {
	if i < inlinePieces {
		return &r.pieces[i]
	}
	p := &r.extra[i-inlinePieces]
	if p.req == nil {
		p.req = r
		for k := 0; k < maxReplicas; k++ {
			k := k
			p.repDone[k] = func(res core.Result) { p.replicaDone(k, res) }
		}
	}
	return p
}

func (p *piece) reset(ext, within int64, count int) {
	p.seq++
	p.ext, p.within, p.count = ext, within, count
	p.done = false
	p.hedgeK = -1
	p.pendingAcks, p.okAcks = 0, 0
	p.firstErr = nil
	for k := range p.tried {
		p.tried[k] = false
	}
}

// --- submission -----------------------------------------------------------

// extentReachable reports whether any replica of extent e can take op
// right now, per the router's view (breaker + divergence log).
func (c *Cluster) extentReachable(e int64, op core.Op) bool {
	for k := 0; k < c.pm.r; k++ {
		l := c.pm.locOf(e, k)
		if l.brick < 0 {
			continue
		}
		st := &c.br[l.brick]
		if st.dead || st.state == Open {
			continue
		}
		if op == core.Read {
			if _, stale := st.div[e]; stale {
				continue
			}
		}
		return true
	}
	return false
}

// Submit issues one logical request (core.Volume). It returns ErrCrashed
// synchronously only when *every* replica of some covered extent is
// unreachable — a partial outage fails over silently; that distinction is
// what lets the gateway map ErrCrashed to 503 only for true full outages.
func (c *Cluster) Submit(op core.Op, off int64, count int, async bool, done func(core.Result)) error {
	if off < 0 || count <= 0 || off+int64(count) > c.DataSectors() {
		return fmt.Errorf("cluster: request [%d, %d) outside volume of %d sectors", off, off+int64(count), c.DataSectors())
	}
	first := off / c.pm.extentSectors
	last := (off + int64(count) - 1) / c.pm.extentSectors
	for e := first; e <= last; e++ {
		if !c.extentReachable(e, op) {
			c.ctr.AllDown++
			return core.ErrCrashed
		}
	}
	r := c.getReq()
	r.op, r.off, r.count, r.async = op, off, count, async
	r.submit = c.rsim().Now()
	r.done = done
	r.remaining = int(last - first + 1)
	r.inflight = 0
	r.failed, r.err, r.reported = false, nil, false
	if n := r.remaining - inlinePieces; n > 0 && n > len(r.extra) {
		r.extra = make([]piece, n)
	}
	c.pending++
	for i, e := 0, first; e <= last; i, e = i+1, e+1 {
		p := r.newPiece(i)
		start, end := e*c.pm.extentSectors, (e+1)*c.pm.extentSectors
		if off > start {
			start = off
		}
		if off+int64(count) < end {
			end = off + int64(count)
		}
		p.reset(e, start-e*c.pm.extentSectors, int(end-start))
		if op == core.Read {
			p.startRead()
		} else {
			p.startWrite()
		}
	}
	r.maybeRecycle()
	return nil
}

// SubmitBatch submits ops in order, stopping at the first error
// (core.Volume). The bricks' own batch amortization is not used: the
// cluster's routing already touches several bricks per batch.
func (c *Cluster) SubmitBatch(ops []core.BatchOp) (int, error) {
	n := 0
	for i := range ops {
		o := &ops[i]
		if err := c.Submit(o.Op, o.Off, o.Count, o.Async, o.Done); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// SubmitBatchErrs attempts every op and returns index-aligned errors
// (core.Volume).
func (c *Cluster) SubmitBatchErrs(ops []core.BatchOp) ([]error, int) {
	var errs []error
	n := 0
	for i := range ops {
		o := &ops[i]
		if err := c.Submit(o.Op, o.Off, o.Count, o.Async, o.Done); err != nil {
			if errs == nil {
				errs = make([]error, len(ops))
			}
			errs[i] = err
			continue
		}
		n++
	}
	return errs, n
}

// --- read path ------------------------------------------------------------

// pickReplica chooses the next untried replica for a read: placed, not
// dead, breaker not Open, not stale — Healthy bricks before Suspect ones,
// placement order breaking ties. Returns -1 when no candidate remains.
func (p *piece) pickReplica() int {
	c := p.req.c
	pick := -1
	for pass := 0; pass < 2; pass++ {
		want := Healthy
		if pass == 1 {
			want = Suspect
		}
		for k := 0; k < c.pm.r; k++ {
			if p.tried[k] {
				continue
			}
			l := c.pm.locOf(p.ext, k)
			if l.brick < 0 {
				continue
			}
			st := &c.br[l.brick]
			if st.dead || st.state != want {
				continue
			}
			if _, stale := st.div[p.ext]; stale {
				continue
			}
			pick = k
			break
		}
		if pick >= 0 {
			break
		}
	}
	return pick
}

// startRead issues the piece's next read attempt, arming a cross-brick
// hedge when the chosen brick is Suspect.
func (p *piece) startRead() {
	c := p.req.c
	k := p.pickReplica()
	if k < 0 {
		p.fail(core.ErrCrashed)
		return
	}
	p.tried[k] = true
	l := c.pm.locOf(p.ext, k)
	if c.opts.HedgeAfter > 0 && c.br[l.brick].state == Suspect {
		seq := p.seq
		c.rsim().After(c.opts.HedgeAfter, func() { p.hedge(seq) })
	}
	p.issue(k, l)
}

// hedge fires the cross-brick hedge timer: if the read is still pending
// and another replica qualifies, issue a duplicate; first answer wins.
func (p *piece) hedge(seq uint64) {
	c := p.req.c
	if p.seq != seq || p.done || p.req.op != core.Read {
		return
	}
	k := p.pickReplica()
	if k < 0 {
		return
	}
	p.tried[k] = true
	p.hedgeK = int8(k)
	c.ctr.Hedges++
	p.issue(k, c.pm.locOf(p.ext, k))
}

// issue routes one replica attempt over the link. The colocated path uses
// the piece's cached closure (zero allocations); the sharded path wraps
// the crossing in per-attempt closures, guarded by seq against recycling.
func (p *piece) issue(k int, l replicaLoc) {
	c := p.req.c
	b := int(l.brick)
	off := c.pm.brickOff(l, p.within)
	p.req.inflight++
	if c.send == nil {
		if err := c.bs[b].Submit(p.req.op, off, p.count, p.req.async, p.repDone[k]); err != nil {
			p.replicaSyncErr(k, err)
		}
		return
	}
	seq := p.seq
	brick, bsim := c.bs[b], c.sims[1+b]
	c.send(0, 1+b, c.rsim().Now()+c.lat, func() {
		err := brick.Submit(p.req.op, off, p.count, p.req.async, func(r core.Result) {
			c.send(1+b, 0, bsim.Now()+c.lat, func() {
				if p.seq == seq {
					p.replicaDone(k, r)
				}
			})
		})
		if err != nil {
			c.send(1+b, 0, bsim.Now()+c.lat, func() {
				if p.seq == seq {
					p.replicaSyncErr(k, err)
				}
			})
		}
	})
}

// replicaDone lands one brick completion on the router shard.
func (p *piece) replicaDone(k int, r core.Result) {
	c := p.req.c
	p.req.inflight--
	b := int(c.pm.locOf(p.ext, k).brick)
	if r.Failed {
		c.noteFailure(b, r.Err)
	} else {
		c.noteSuccess(b, r.Done-r.Submit)
	}
	if p.req.op == core.Read {
		p.readAttemptDone(k, !r.Failed, r.Err)
	} else {
		p.writeAckDone(b, !r.Failed, r.Err)
	}
	p.req.maybeRecycle()
}

// replicaSyncErr lands a synchronous brick rejection on the router shard.
func (p *piece) replicaSyncErr(k int, err error) {
	c := p.req.c
	p.req.inflight--
	b := int(c.pm.locOf(p.ext, k).brick)
	c.noteFailure(b, err)
	if p.req.op == core.Read {
		p.readAttemptDone(k, false, err)
	} else {
		p.writeAckDone(b, false, err)
	}
	p.req.maybeRecycle()
}

// readAttemptDone resolves one read attempt: first success wins; a failure
// fails over to the next replica (with optional backoff) until none
// remain. Attempts landing after the piece completed (hedge losers, late
// primaries) are dropped — inflight accounting already covered them.
func (p *piece) readAttemptDone(k int, ok bool, err error) {
	c := p.req.c
	if p.done {
		return
	}
	if ok {
		if int8(k) == p.hedgeK {
			c.ctr.HedgeWins++
		}
		p.succeed()
		return
	}
	c.ctr.ReadFailovers++
	if c.opts.RetryBackoff > 0 {
		seq := p.seq
		c.rsim().After(c.opts.RetryBackoff, func() {
			if p.seq == seq && !p.done {
				p.startRead()
			}
		})
		return
	}
	p.startRead()
}

// --- write path -----------------------------------------------------------

// startWrite fans the piece out to every placed, routable replica. Replicas
// behind an Open breaker (or on a dead brick) are logged as divergent;
// replicas already divergent are skipped with their entry dirtied so an
// in-flight backfill copy re-copies. Submit's reachability precheck
// guarantees at least one target exists.
func (p *piece) startWrite() {
	c := p.req.c
	var targets [maxReplicas]int8
	nt := 0
	for k := 0; k < c.pm.r; k++ {
		l := c.pm.locOf(p.ext, k)
		if l.brick < 0 {
			continue
		}
		st := &c.br[l.brick]
		if st.dead || st.state == Open {
			c.diverge(int(l.brick), p.ext)
			continue
		}
		if ent, stale := st.div[p.ext]; stale {
			ent.gen++
			continue
		}
		targets[nt] = int8(k)
		nt++
	}
	if nt == 0 {
		// Raced a breaker trip between the precheck and the fan-out.
		p.fail(core.ErrCrashed)
		return
	}
	p.pendingAcks = int8(nt)
	for i := 0; i < nt; i++ {
		k := int(targets[i])
		p.issue(k, c.pm.locOf(p.ext, k))
	}
}

// writeAckDone retires one replica ack. A failed replica diverges (the
// write may not have reached its media); the piece succeeds if any
// replica acked.
func (p *piece) writeAckDone(b int, ok bool, err error) {
	c := p.req.c
	if ok {
		p.okAcks++
	} else {
		c.diverge(b, p.ext)
		if p.firstErr == nil {
			p.firstErr = err
		}
	}
	p.pendingAcks--
	if p.pendingAcks > 0 || p.done {
		return
	}
	if p.okAcks > 0 {
		p.succeed()
	} else {
		err := p.firstErr
		if err == nil {
			err = core.ErrCrashed
		}
		p.fail(err)
	}
}

// --- completion -----------------------------------------------------------

func (p *piece) succeed() {
	p.done = true
	p.req.pieceDone()
}

func (p *piece) fail(err error) {
	p.done = true
	r := p.req
	r.failed = true
	if r.err == nil {
		r.err = err
	}
	r.pieceDone()
}

func (r *request) pieceDone() {
	r.remaining--
	if r.remaining > 0 || r.reported {
		return
	}
	r.reported = true
	c := r.c
	c.pending--
	if r.done != nil {
		r.done(core.Result{
			Op: r.op, Off: r.off, Count: r.count, Async: r.async,
			Submit: r.submit, Done: c.rsim().Now(),
			Failed: r.failed, Err: r.err,
		})
	}
}

// maybeRecycle returns the request to the pool once the logical outcome is
// reported and no brick callback can still arrive.
func (r *request) maybeRecycle() {
	if r.reported && r.remaining == 0 && r.inflight == 0 {
		r.c.putReq(r)
	}
}

// --- core.Volume ----------------------------------------------------------

// Sim returns the router's simulator (shard 0 in a sharded topology).
func (c *Cluster) Sim() *des.Sim { return c.sims[0] }

// DataSectors is the replicated logical capacity: raw brick capacity
// divided by R, minus placement headroom — capacity traded for surviving
// brick loss, the cluster-level instance of the paper's tradeoff.
func (c *Cluster) DataSectors() int64 { return c.pm.extents * c.pm.extentSectors }

// Disks sums the bricks' drives.
func (c *Cluster) Disks() int {
	n := 0
	for _, b := range c.bs {
		n += b.Disks()
	}
	return n
}

// Idle reports no in-flight requests, no pending or active backfill, and
// every brick idle. Only meaningful in a colocated topology (or a
// quiescent sharded engine).
func (c *Cluster) Idle() bool {
	if c.pending > 0 {
		return false
	}
	for b := range c.br {
		st := &c.br[b]
		if st.backfillActive {
			return false
		}
		if len(st.div) > 0 && !st.dead && st.state != Open {
			return false
		}
	}
	for b, v := range c.bs {
		if c.br[b].dead {
			// A dead brick never drains (it is typically still crashed);
			// the cluster no longer owes it anything.
			continue
		}
		if !v.Idle() {
			return false
		}
	}
	return true
}

// Drain steps the router's simulator until Idle, bounded by maxTime.
// Unavailable in a sharded topology, where the caller owns the engine.
func (c *Cluster) Drain(maxTime des.Time) bool {
	if c.send != nil {
		panic("cluster: Drain on a sharded cluster (run the engine instead)")
	}
	sim := c.rsim()
	deadline := sim.Now() + maxTime
	for !c.Idle() {
		if !sim.Step() || sim.Now() > deadline {
			return c.Idle()
		}
	}
	return true
}

// Faults sums the bricks' fault counters.
func (c *Cluster) Faults() core.FaultCounters {
	var t core.FaultCounters
	for _, b := range c.bs {
		f := b.Faults()
		t.Transients += f.Transients
		t.Timeouts += f.Timeouts
		t.Retries += f.Retries
		t.Failovers += f.Failovers
		t.FailedReads += f.FailedReads
		t.FailedWrites += f.FailedWrites
		t.RebuildsStarted += f.RebuildsStarted
		t.RebuildsDone += f.RebuildsDone
		t.LostChunks += f.LostChunks
		t.SlowCommands += f.SlowCommands
		t.Stutters += f.Stutters
		t.Evictions += f.Evictions
		t.LatentErrors += f.LatentErrors
		t.TornWrites += f.TornWrites
		t.CorruptReads += f.CorruptReads
		t.SilentReads += f.SilentReads
		t.VerifyDetected += f.VerifyDetected
		t.RepairsQueued += f.RepairsQueued
		t.RepairsDone += f.RepairsDone
		t.RepairsDropped += f.RepairsDropped
	}
	return t
}

// Hedges sums the bricks' in-array hedge counters (cross-brick hedges are
// in Counters).
func (c *Cluster) Hedges() core.HedgeCounters {
	var t core.HedgeCounters
	for _, b := range c.bs {
		h := b.Hedges()
		t.Issued += h.Issued
		t.Won += h.Won
		t.Lost += h.Lost
		t.Cancelled += h.Cancelled
	}
	return t
}

// Sheds sums the bricks' admission counters.
func (c *Cluster) Sheds() core.ShedCounters {
	var t core.ShedCounters
	for _, b := range c.bs {
		s := b.Sheds()
		t.Overload += s.Overload
		t.Deadline += s.Deadline
	}
	return t
}

// Tuning reports brick 0's tuning (bricks are tuned in lockstep through
// SetTuning).
func (c *Cluster) Tuning() core.Tuning { return c.bs[0].Tuning() }

// SetTuning fans the tuning out to every brick.
func (c *Cluster) SetTuning(t core.Tuning) error {
	for i, b := range c.bs {
		if err := b.SetTuning(t); err != nil {
			return fmt.Errorf("cluster: brick %d: %w", i, err)
		}
	}
	return nil
}

// Crashed reports a full-cluster outage: every brick down.
func (c *Cluster) Crashed() bool {
	for _, b := range c.bs {
		if !b.Crashed() {
			return false
		}
	}
	return true
}

// Crash power-fails every brick (colocated topologies only — the router
// must be able to reach the bricks synchronously).
func (c *Cluster) Crash() error {
	if c.send != nil {
		return fmt.Errorf("cluster: Crash on a sharded cluster (crash bricks on their own shards)")
	}
	for i, b := range c.bs {
		if b.Crashed() {
			continue
		}
		if err := b.Crash(); err != nil {
			return fmt.Errorf("cluster: brick %d: %w", i, err)
		}
		c.trip(i)
	}
	return nil
}

// Recover powers every crashed brick back on and reopens its route.
func (c *Cluster) Recover() error {
	if c.send != nil {
		return fmt.Errorf("cluster: Recover on a sharded cluster (recover bricks on their own shards)")
	}
	for i, b := range c.bs {
		if !b.Crashed() {
			continue
		}
		if err := b.Recover(); err != nil {
			return fmt.Errorf("cluster: brick %d: %w", i, err)
		}
		c.closeBreaker(i)
	}
	return nil
}

// Recovery sums the bricks' crash/recovery counters.
func (c *Cluster) Recovery() core.RecoveryCounters {
	var t core.RecoveryCounters
	for _, b := range c.bs {
		r := b.Recovery()
		t.Crashes += r.Crashes
		t.Recoveries += r.Recoveries
		t.LostDelayed += r.LostDelayed
		t.Adopted += r.Adopted
		t.Scanned += r.Scanned
		t.DivergentFound += r.DivergentFound
		t.RepairsQueued += r.RepairsQueued
		t.Repaired += r.Repaired
		t.RepairsDropped += r.RepairsDropped
		t.Unrepairable += r.Unrepairable
		t.RecoveryTime += r.RecoveryTime
	}
	return t
}

var _ core.Volume = (*Cluster)(nil)

// --- cluster-specific surface ---------------------------------------------

// Bricks reports the brick count.
func (c *Cluster) Bricks() int { return len(c.bs) }

// Brick exposes brick b (tests, admin).
func (c *Cluster) Brick(b int) core.Volume { return c.bs[b] }

// State reports brick b's breaker state.
func (c *Cluster) State(b int) Health { return c.br[b].state }

// Counters snapshots the cluster-level accounting.
func (c *Cluster) Counters() Counters { return c.ctr }

// DivergencePending reports the live divergence-log entries across all
// bricks — 0 once backfill has fully reconciled.
func (c *Cluster) DivergencePending() int {
	n := 0
	for b := range c.br {
		n += len(c.br[b].div)
	}
	return n
}

// Replicas reports the bricks currently holding extent e, in placement
// order (unplaced replicas omitted).
func (c *Cluster) Replicas(e int64) []int {
	var out []int
	for k := 0; k < c.pm.r; k++ {
		if l := c.pm.locOf(e, k); l.brick >= 0 {
			out = append(out, int(l.brick))
		}
	}
	return out
}

// ExtentOf maps a logical sector offset to its extent index.
func (c *Cluster) ExtentOf(off int64) int64 { return off / c.pm.extentSectors }

// CrashBrick power-fails one brick without telling the router — the
// breaker must discover the outage from failing traffic, exactly as it
// would in production. Colocated topologies only.
func (c *Cluster) CrashBrick(b int) error {
	if c.send != nil {
		return fmt.Errorf("cluster: CrashBrick on a sharded cluster")
	}
	return c.bs[b].Crash()
}

// RecoverBrick powers one brick back on and closes its breaker directly
// (the explicit-admin path; the probe path discovers recovery on its own).
func (c *Cluster) RecoverBrick(b int) error {
	if c.send != nil {
		return fmt.Errorf("cluster: RecoverBrick on a sharded cluster")
	}
	if err := c.bs[b].Recover(); err != nil {
		return err
	}
	c.closeBreaker(b)
	return nil
}
