// Package stats provides the small statistical toolkit the experiments
// use: streaming collectors with percentiles, and rate (throughput)
// accounting.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
)

// Collector accumulates samples (typically response times in
// microseconds).
type Collector struct {
	vals   []float64
	sorted bool
}

// Add records one sample.
func (c *Collector) Add(v des.Time) {
	c.vals = append(c.vals, float64(v))
	c.sorted = false
}

// N returns the sample count.
func (c *Collector) N() int { return len(c.vals) }

// Mean returns the sample mean.
func (c *Collector) Mean() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.vals {
		s += v
	}
	return des.Time(s / float64(len(c.vals)))
}

// Std returns the population standard deviation.
func (c *Collector) Std() des.Time {
	n := len(c.vals)
	if n == 0 {
		return 0
	}
	m := float64(c.Mean())
	var s float64
	for _, v := range c.vals {
		d := v - m
		s += d * d
	}
	return des.Time(math.Sqrt(s / float64(n)))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank.
func (c *Collector) Percentile(p float64) des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	if !c.sorted {
		sort.Float64s(c.vals)
		c.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c.vals) {
		rank = len(c.vals)
	}
	return des.Time(c.vals[rank-1])
}

// Max returns the largest sample.
func (c *Collector) Max() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	if c.sorted {
		return des.Time(c.vals[len(c.vals)-1])
	}
	best := c.vals[0]
	for _, v := range c.vals[1:] {
		if v > best {
			best = v
		}
	}
	return des.Time(best)
}

// Min returns the smallest sample.
func (c *Collector) Min() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	if c.sorted {
		return des.Time(c.vals[0])
	}
	best := c.vals[0]
	for _, v := range c.vals[1:] {
		if v < best {
			best = v
		}
	}
	return des.Time(best)
}

// Summary is a one-line description of the distribution.
func (c *Collector) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		c.N(), c.Mean(), c.Percentile(50), c.Percentile(95), c.Percentile(99), c.Max())
}

// Throughput converts a completion count over a simulated interval into
// I/Os per second.
func Throughput(completed int, elapsed des.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed.Seconds()
}
