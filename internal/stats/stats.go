// Package stats provides the small statistical toolkit the experiments
// use: streaming collectors with percentiles, and rate (throughput)
// accounting.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
)

// Collector accumulates samples (typically response times in
// microseconds). Mean and Std are maintained online (Welford), so they
// are O(1) at read time and never trigger a sort; order statistics
// (Percentile, Max, Min) share one lazily-built sorted copy of the
// samples, leaving the insertion-order sample slice untouched.
type Collector struct {
	vals []float64
	// sorted is the cached sorted view, built on first demand and
	// invalidated by Add; it is always a copy, never c.vals itself.
	sorted []float64
	// Welford running state: mean and sum of squared deviations.
	mean float64
	m2   float64
}

// Add records one sample.
func (c *Collector) Add(v des.Time) {
	c.vals = append(c.vals, float64(v))
	c.sorted = nil
	d := float64(v) - c.mean
	c.mean += d / float64(len(c.vals))
	c.m2 += d * (float64(v) - c.mean)
}

// N returns the sample count.
func (c *Collector) N() int { return len(c.vals) }

// Mean returns the sample mean.
func (c *Collector) Mean() des.Time {
	return des.Time(c.mean)
}

// Std returns the population standard deviation.
func (c *Collector) Std() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	return des.Time(math.Sqrt(c.m2 / float64(len(c.vals))))
}

// sortedView returns the shared sorted copy of the samples, building it
// if an Add invalidated the cache.
func (c *Collector) sortedView() []float64 {
	if c.sorted == nil {
		c.sorted = append([]float64(nil), c.vals...)
		sort.Float64s(c.sorted)
	}
	return c.sorted
}

// Percentile returns the p-th percentile by nearest-rank. p must satisfy
// 0 < p <= 100; anything else (including NaN) is a caller bug and panics
// rather than being silently clamped to a valid rank.
func (c *Collector) Percentile(p float64) des.Time {
	if math.IsNaN(p) || p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile(%v) outside (0, 100]", p))
	}
	if len(c.vals) == 0 {
		return 0
	}
	s := c.sortedView()
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1 // p so small the ceil underflows to 0
	}
	return des.Time(s[rank-1])
}

// Max returns the largest sample.
func (c *Collector) Max() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	if c.sorted != nil {
		return des.Time(c.sorted[len(c.sorted)-1])
	}
	best := c.vals[0]
	for _, v := range c.vals[1:] {
		if v > best {
			best = v
		}
	}
	return des.Time(best)
}

// Min returns the smallest sample.
func (c *Collector) Min() des.Time {
	if len(c.vals) == 0 {
		return 0
	}
	if c.sorted != nil {
		return des.Time(c.sorted[0])
	}
	best := c.vals[0]
	for _, v := range c.vals[1:] {
		if v < best {
			best = v
		}
	}
	return des.Time(best)
}

// Summary is a one-line description of the distribution. One sort serves
// all three percentiles and the max.
func (c *Collector) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		c.N(), c.Mean(), c.Percentile(50), c.Percentile(95), c.Percentile(99), c.Max())
}

// Throughput converts a completion count over a simulated interval into
// I/Os per second.
func Throughput(completed int, elapsed des.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed.Seconds()
}

// TrimWarmup is the one place measurement windows are derived: it clips
// the first warmup of [start, end] and returns the interval completions
// should be counted over. Every caller that excludes warmup — the
// iometer's closed loop, the degraded-rebuild experiment — must go
// through here, so a window can never start before the run or extend past
// its end. A warmup longer than the run collapses the window to [end,
// end], which Throughput then reports as rate 0 rather than a negative or
// inflated figure. Negative warmup and end < start are caller bugs and
// panic.
func TrimWarmup(start, end, warmup des.Time) (des.Time, des.Time) {
	if warmup < 0 {
		panic(fmt.Sprintf("stats: negative warmup %v", warmup))
	}
	if end < start {
		panic(fmt.Sprintf("stats: TrimWarmup window ends (%v) before it starts (%v)", end, start))
	}
	ws := start + warmup
	if ws > end {
		ws = end
	}
	return ws, end
}
