package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestCollectorBasics(t *testing.T) {
	var c Collector
	for _, v := range []des.Time{10, 20, 30, 40, 50} {
		c.Add(v)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Mean() != 30 {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if c.Min() != 10 || c.Max() != 50 {
		t.Fatalf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Percentile(50); got != 30 {
		t.Fatalf("P50 = %v", got)
	}
	if got := c.Percentile(100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	want := des.Time(math.Sqrt(200))
	if diff := math.Abs(float64(c.Std() - want)); diff > 1e-9 {
		t.Fatalf("Std = %v, want %v", c.Std(), want)
	}
}

func TestEmptyCollector(t *testing.T) {
	var c Collector
	if c.Mean() != 0 || c.Std() != 0 || c.Percentile(50) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Fatal("empty collector should return zeros")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c Collector
		for i := 0; i < 100; i++ {
			c.Add(des.Time(rng.Float64() * 1000))
		}
		prev := des.Time(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.Percentile(100) == c.Max() && c.Percentile(0.0001) == c.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var c Collector
	c.Add(10)
	_ = c.Percentile(50)
	c.Add(5)
	if c.Percentile(1) != 5 {
		t.Fatal("collector stale after Add following Percentile")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(500, des.Second); got != 500 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero elapsed = %v", got)
	}
}

// TestAddOrderSurvivesSummary is the regression test for the in-place
// Percentile sort: order statistics must work on a copy, leaving the
// caller-visible insertion order intact.
func TestAddOrderSurvivesSummary(t *testing.T) {
	in := []des.Time{50, 10, 40, 20, 30}
	var c Collector
	for _, v := range in {
		c.Add(v)
	}
	_ = c.Summary()
	for i, v := range in {
		if c.vals[i] != float64(v) {
			t.Fatalf("Summary() reordered samples: vals[%d] = %v, want %v", i, c.vals[i], v)
		}
	}
	if got := c.Percentile(50); got != 30 {
		t.Fatalf("P50 after Summary = %v", got)
	}
}

func TestPercentileRejectsInvalid(t *testing.T) {
	var c Collector
	c.Add(1)
	for _, p := range []float64{0, -5, 100.001, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			c.Percentile(p)
		}()
	}
}

// TestWelfordMatchesTwoPass checks the online mean/variance against the
// naive two-pass computation.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c Collector
		var vals []float64
		for i := 0; i < 200; i++ {
			v := rng.Float64()*1e6 - 5e5
			c.Add(des.Time(v))
			vals = append(vals, v)
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(len(vals))
		var m2 float64
		for _, v := range vals {
			m2 += (v - mean) * (v - mean)
		}
		std := math.Sqrt(m2 / float64(len(vals)))
		return math.Abs(float64(c.Mean())-mean) < 1e-6 && math.Abs(float64(c.Std())-std) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrimWarmup(t *testing.T) {
	ms := des.Millisecond
	cases := []struct {
		name               string
		start, end, warmup des.Time
		wantStart, wantEnd des.Time
	}{
		{"zero warmup", 10 * ms, 100 * ms, 0, 10 * ms, 100 * ms},
		{"normal trim", 10 * ms, 100 * ms, 30 * ms, 40 * ms, 100 * ms},
		{"warmup to edge", 10 * ms, 100 * ms, 90 * ms, 100 * ms, 100 * ms},
		{"warmup past end clamps", 10 * ms, 100 * ms, 200 * ms, 100 * ms, 100 * ms},
		{"empty window", 50 * ms, 50 * ms, 10 * ms, 50 * ms, 50 * ms},
		{"nonzero origin", des.Hour, des.Hour + 100*ms, 40 * ms, des.Hour + 40*ms, des.Hour + 100*ms},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws, we := TrimWarmup(tc.start, tc.end, tc.warmup)
			if ws != tc.wantStart || we != tc.wantEnd {
				t.Fatalf("TrimWarmup(%v, %v, %v) = (%v, %v), want (%v, %v)",
					tc.start, tc.end, tc.warmup, ws, we, tc.wantStart, tc.wantEnd)
			}
			if r := Throughput(0, we-ws); r != 0 {
				t.Fatalf("zero completions gave rate %v", r)
			}
		})
	}
	for _, bad := range []struct {
		name               string
		start, end, warmup des.Time
	}{
		{"negative warmup", 0, 100, -1},
		{"inverted window", 100, 50, 0},
	} {
		t.Run(bad.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			TrimWarmup(bad.start, bad.end, bad.warmup)
		})
	}
}
