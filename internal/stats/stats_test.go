package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestCollectorBasics(t *testing.T) {
	var c Collector
	for _, v := range []des.Time{10, 20, 30, 40, 50} {
		c.Add(v)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Mean() != 30 {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if c.Min() != 10 || c.Max() != 50 {
		t.Fatalf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Percentile(50); got != 30 {
		t.Fatalf("P50 = %v", got)
	}
	if got := c.Percentile(100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	want := des.Time(math.Sqrt(200))
	if diff := math.Abs(float64(c.Std() - want)); diff > 1e-9 {
		t.Fatalf("Std = %v, want %v", c.Std(), want)
	}
}

func TestEmptyCollector(t *testing.T) {
	var c Collector
	if c.Mean() != 0 || c.Std() != 0 || c.Percentile(50) != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Fatal("empty collector should return zeros")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c Collector
		for i := 0; i < 100; i++ {
			c.Add(des.Time(rng.Float64() * 1000))
		}
		prev := des.Time(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.Percentile(100) == c.Max() && c.Percentile(0.0001) == c.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAfterPercentile(t *testing.T) {
	var c Collector
	c.Add(10)
	_ = c.Percentile(50)
	c.Add(5)
	if c.Percentile(1) != 5 {
		t.Fatal("collector stale after Add following Percentile")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(500, des.Second); got != 500 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero elapsed = %v", got)
	}
}
