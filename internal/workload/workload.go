// Package workload drives a core.Array with the two load shapes the paper
// evaluates: an Iometer-style closed loop (fixed number of outstanding
// requests, fixed read fraction and request size — the micro-benchmarks of
// Section 4.2 and the validation of Section 3.5) and an open-loop trace
// replayer (the macro-benchmarks of Section 4.1).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Iometer is a closed-loop generator: it keeps Outstanding requests in
// flight, each a ReadFrac-weighted read or write of Sectors sectors at a
// position drawn with seek locality Locality.
type Iometer struct {
	ReadFrac    float64
	Sectors     int
	Outstanding int
	// Locality is the seek-locality index (the paper's micro-benchmarks
	// use 3); 1 = uniform random.
	Locality float64
	Seed     int64
	// Warmup excludes the run's first Warmup of simulated time from the
	// reported latency and IOPS (completions before the trimmed window
	// still count toward Completed). Zero measures the whole run.
	Warmup des.Time
	// Batch primes the initial Outstanding window through Array.SubmitBatch
	// instead of one Submit per request: each touched drive schedules once
	// against the full window rather than after every submission. The
	// steady-state loop is unaffected (each completion reissues one
	// request). Scheduling decisions during the priming burst may differ
	// from the unbatched driver, so figures that pin exact outputs keep
	// Batch off.
	Batch bool
}

// Result aggregates a run.
type Result struct {
	Completed int
	// Measured counts the completions inside the post-warmup window; it
	// equals Completed when Warmup is zero.
	Measured int
	Elapsed  des.Time
	IOPS     float64
	Latency  stats.Collector
}

// Run issues `total` requests and returns throughput and latency results.
func (w Iometer) Run(sim *des.Sim, a *core.Array, total int) (*Result, error) {
	if w.Outstanding < 1 {
		return nil, fmt.Errorf("workload: need at least one outstanding request")
	}
	if w.Sectors < 1 {
		w.Sectors = 1
	}
	loc := w.Locality
	if loc < 1 {
		loc = 1
	}
	rng := rand.New(rand.NewSource(w.Seed))
	res := &Result{}
	n := float64(a.DataSectors() - int64(w.Sectors))
	win := n / 256
	pl := (n/3 - n/(3*loc)) / (n/3 - win/4)
	if pl < 0 {
		pl = 0
	}
	cur := rng.Int63n(int64(n))
	nextOff := func() int64 {
		if rng.Float64() < pl {
			cur += int64((rng.Float64() - 0.5) * win)
			if cur < 0 {
				cur = -cur
			}
			if cur >= int64(n) {
				cur = int64(n) - 1
			}
		} else {
			cur = rng.Int63n(int64(n))
		}
		return cur
	}

	start := sim.Now()
	measureFrom := start + w.Warmup
	issued := 0
	finished := 0
	measured := 0
	errs := []error{}
	// One completion closure for the whole run: the per-request state lives
	// in the captured counters, so the hot loop allocates nothing per I/O.
	var issue func()
	onDone := func(r core.Result) {
		if r.Done >= measureFrom {
			res.Latency.Add(r.Latency())
			measured++
		}
		finished++
		issue()
	}
	nextReq := func() (core.Op, int64) {
		op := core.Read
		if rng.Float64() >= w.ReadFrac {
			op = core.Write
		}
		return op, nextOff()
	}
	issue = func() {
		if issued >= total {
			return
		}
		issued++
		op, off := nextReq()
		if err := a.Submit(op, off, w.Sectors, false, onDone); err != nil {
			errs = append(errs, err)
			finished++
		}
	}
	prime := w.Outstanding
	if total < prime {
		prime = total
	}
	if w.Batch {
		ops := make([]core.BatchOp, prime)
		for i := range ops {
			op, off := nextReq()
			ops[i] = core.BatchOp{Op: op, Off: off, Count: w.Sectors, Done: onDone}
		}
		issued = prime
		n, err := a.SubmitBatch(ops)
		if err != nil {
			errs = append(errs, err)
			finished += prime - n
		}
	} else {
		for i := 0; i < prime; i++ {
			issue()
		}
	}
	for finished < total {
		if !sim.Step() {
			return nil, fmt.Errorf("workload: simulation stalled with %d/%d finished", finished, total)
		}
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}
	res.Completed = finished
	res.Measured = measured
	res.Elapsed = sim.Now() - start
	ws, we := stats.TrimWarmup(start, sim.Now(), w.Warmup)
	res.IOPS = stats.Throughput(measured, we-ws)
	return res, nil
}

// ReplayResult aggregates a trace replay.
type ReplayResult struct {
	Submitted int
	Completed int
	// Sync collects response times of reads and synchronous writes — the
	// population the paper reports. Async collects the rest.
	Sync  stats.Collector
	Async stats.Collector
	// MaxQueue is the largest per-drive foreground queue seen.
	MaxQueue int
	// Saturated reports that replay was cut short because a drive queue
	// exceeded SaturationQueue — the offered load is beyond the array's
	// sustainable throughput.
	Saturated bool
}

// SaturationQueue is the per-drive queue length at which Replay gives up:
// response times this deep in overload carry no information beyond
// "saturated", and scheduling costs grow with queue length.
const SaturationQueue = 2000

// MeanResponse is the reported mean (sync requests only).
func (r *ReplayResult) MeanResponse() des.Time { return r.Sync.Mean() }

// Replay plays a trace open-loop against an array: each record is
// submitted at its arrival timestamp regardless of completions. It returns
// once every record has completed.
func Replay(sim *des.Sim, a *core.Array, tr *trace.Trace) (*ReplayResult, error) {
	if tr.DataSectors > a.DataSectors() {
		return nil, fmt.Errorf("workload: trace volume %d exceeds array volume %d", tr.DataSectors, a.DataSectors())
	}
	res := &ReplayResult{}
	finished := 0
	// Arrivals self-schedule one ahead to keep the event queue small; only
	// one arrival event is ever outstanding, so a single event closure and a
	// shared cursor replace the per-record closures of the old driver.
	base := sim.Now()
	onDone := func(cr core.Result) {
		if cr.Async {
			res.Async.Add(cr.Latency())
		} else {
			res.Sync.Add(cr.Latency())
		}
		finished++
	}
	submitOne := func(r trace.Record) error {
		op := core.Read
		if r.Write {
			op = core.Write
		}
		count := r.Count
		if count < 1 {
			count = 1
		}
		off := r.Off
		if off+int64(count) > a.DataSectors() {
			off = a.DataSectors() - int64(count)
		}
		return a.Submit(op, off, count, r.Async, onDone)
	}
	stopped := false
	next := 0
	var arriveEvt func()
	schedule := func() {
		if next >= len(tr.Records) || stopped {
			return
		}
		at := base + tr.Records[next].At
		if at < sim.Now() {
			at = sim.Now()
		}
		sim.At(at, arriveEvt)
	}
	arriveEvt = func() {
		rec := tr.Records[next]
		next++
		if err := submitOne(rec); err != nil {
			panic(err)
		}
		res.Submitted++
		for d := 0; d < a.Disks(); d++ {
			if q := a.QueueLen(d); q > res.MaxQueue {
				res.MaxQueue = q
			}
		}
		if res.MaxQueue > SaturationQueue {
			res.Saturated = true
			stopped = true
			return
		}
		schedule()
	}
	schedule()
	for finished < res.Submitted || !stopped && finished < len(tr.Records) {
		if !sim.Step() {
			if res.Saturated && finished >= res.Submitted {
				break
			}
			return nil, fmt.Errorf("workload: replay stalled at %d/%d", finished, len(tr.Records))
		}
	}
	res.Completed = finished
	return res, nil
}
