package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/layout"
	"repro/internal/tracegen"
)

func newArray(t testing.TB, cfg layout.Config, policy string) (*des.Sim, *core.Array) {
	t.Helper()
	sim := des.New()
	a, err := core.New(sim, core.Options{Config: cfg, Policy: policy, DataSectors: 1 << 21, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sim, a
}

func TestIometerRunBasics(t *testing.T) {
	sim, a := newArray(t, layout.Striping(2), "satf")
	w := Iometer{ReadFrac: 1, Sectors: 1, Outstanding: 4, Locality: 3, Seed: 1}
	res, err := w.Run(sim, a, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 500 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.IOPS < 50 || res.IOPS > 5000 {
		t.Fatalf("IOPS = %.1f, implausible", res.IOPS)
	}
	if res.Latency.N() != 500 {
		t.Fatalf("latency samples %d", res.Latency.N())
	}
}

func TestIometerThroughputGrowsWithQueueDepth(t *testing.T) {
	measure := func(q int) float64 {
		sim, a := newArray(t, layout.Striping(4), "satf")
		w := Iometer{ReadFrac: 1, Sectors: 1, Outstanding: q, Locality: 3, Seed: 2}
		res, err := w.Run(sim, a, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS
	}
	q1 := measure(1)
	q8 := measure(8)
	q32 := measure(32)
	if !(q1 < q8 && q8 < q32) {
		t.Fatalf("throughput not increasing with queue depth: %f %f %f", q1, q8, q32)
	}
}

func TestIometerValidation(t *testing.T) {
	sim, a := newArray(t, layout.Striping(2), "satf")
	if _, err := (Iometer{Outstanding: 0}).Run(sim, a, 10); err == nil {
		t.Fatal("zero outstanding accepted")
	}
}

func TestReplayCompletesAllRecords(t *testing.T) {
	sim, a := newArray(t, layout.SRArray(2, 3), "rsatf")
	p := tracegen.CelloBase(3).WithDuration(20 * des.Minute)
	p.DataSectors = 1 << 20 // fit the small test volume
	tr := tracegen.Generate(p)
	res, err := Replay(sim, a, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tr.Records) {
		t.Fatalf("completed %d of %d", res.Completed, len(tr.Records))
	}
	if res.Sync.N()+res.Async.N() != len(tr.Records) {
		t.Fatalf("collected %d+%d samples for %d records", res.Sync.N(), res.Async.N(), len(tr.Records))
	}
	if res.MeanResponse() <= 0 {
		t.Fatal("non-positive mean response")
	}
}

func TestReplayRejectsOversizedTrace(t *testing.T) {
	sim, a := newArray(t, layout.Striping(2), "satf")
	p := tracegen.TPCC(1).WithDuration(des.Second)
	tr := tracegen.Generate(p) // 9 GB volume vs 1 GB array
	if _, err := Replay(sim, a, tr); err == nil {
		t.Fatal("oversized trace accepted")
	}
}

// Replaying the same trace at a higher rate must not lower mean response
// time (queueing only hurts).
func TestReplayScalingMonotone(t *testing.T) {
	run := func(rate float64) des.Time {
		sim, a := newArray(t, layout.Striping(2), "satf")
		p := tracegen.TPCC(4).WithDuration(30 * des.Second)
		p.DataSectors = 1 << 20
		p.MeanIOPS = 120
		tr := tracegen.Generate(p).Scale(rate)
		res, err := Replay(sim, a, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponse()
	}
	slow := run(1)
	fast := run(4)
	if fast < slow {
		t.Fatalf("mean response at 4x (%v) below 1x (%v)", fast, slow)
	}
}

func TestIometerDeterministic(t *testing.T) {
	run := func() float64 {
		sim, a := newArray(t, layout.SRArray(2, 3), "rsatf")
		res, err := (Iometer{ReadFrac: 0.8, Sectors: 4, Outstanding: 6, Locality: 2, Seed: 3}).Run(sim, a, 600)
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %v and %v IOPS", a, b)
	}
}

func TestReplayBuildsQueuesUnderScaling(t *testing.T) {
	sim, a := newArray(t, layout.Striping(2), "satf")
	p := tracegen.TPCC(8).WithDuration(20 * des.Second)
	p.DataSectors = 1 << 20
	p.MeanIOPS = 300
	tr := tracegen.Generate(p).Scale(3)
	res, err := Replay(sim, a, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueue < 2 {
		t.Fatalf("MaxQueue = %d under 3x scaling of a 300 IOPS trace on 2 disks", res.MaxQueue)
	}
}

// TestIometerWarmupTrimsMeasurement: a warmed-up run measures fewer
// completions over a shorter window, and a zero warmup reproduces the
// untrimmed run exactly.
func TestIometerWarmupTrimsMeasurement(t *testing.T) {
	run := func(warmup des.Time) *Result {
		sim, a := newArray(t, layout.Striping(2), "satf")
		w := Iometer{ReadFrac: 1, Sectors: 1, Outstanding: 4, Locality: 3, Seed: 1, Warmup: warmup}
		res, err := w.Run(sim, a, 500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	if base.Measured != base.Completed {
		t.Fatalf("zero warmup measured %d of %d", base.Measured, base.Completed)
	}
	trimmed := run(50 * des.Millisecond)
	if trimmed.Completed != 500 {
		t.Fatalf("completed %d", trimmed.Completed)
	}
	if trimmed.Measured >= trimmed.Completed || trimmed.Measured == 0 {
		t.Fatalf("measured %d of %d: warmup trimmed nothing (or everything)", trimmed.Measured, trimmed.Completed)
	}
	if trimmed.Latency.N() != trimmed.Measured {
		t.Fatalf("latency samples %d != measured %d", trimmed.Latency.N(), trimmed.Measured)
	}
	// A warmup longer than the whole run measures nothing and reports a
	// zero rate instead of dividing by a bogus window.
	drowned := run(des.Hour)
	if drowned.Measured != 0 || drowned.IOPS != 0 {
		t.Fatalf("over-long warmup measured %d at %.1f IOPS", drowned.Measured, drowned.IOPS)
	}
}
