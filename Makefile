GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: compile, vet, and the test suite under the race detector
# (the parallel experiment runner makes -race meaningful).
check:
	scripts/check.sh

# Capture the benchmark suite as BENCH_<date>.json for cross-PR tracking.
bench:
	scripts/bench.sh
