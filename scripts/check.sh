#!/bin/sh
# Tier-1 gate: build, vet, and the full test suite under the race
# detector, then once more with shuffled test order to catch
# inter-test state leakage.
set -eu
cd "$(dirname "$0")/.."
set -x
go build ./...
go vet ./...
go test -race ./...
go test -shuffle=on ./...
# The corruption/scrub/hedge composition tests exercise the most
# cross-subsystem state; run them twice under the race detector to
# catch order-dependent residue the single pass can miss.
go test -race -count=2 -run 'TestScrub|TestCorruption|TestSilent|TestLatent|TestTorn|TestHedgeFault' ./internal/core
# Crash/chaos composition: the crash state machine plus the chaos
# experiment (which digest-checks itself across 1/2/4 epoch workers and
# both NVRAM durability modes); run twice under the race detector to
# catch order-dependent residue.
go test -race -count=2 -run 'TestCrash|TestBatteryHorizon|TestScheduledCrash|TestBatchThenCrash|TestRepeatedCrash' ./internal/core
go test -race -count=2 -run 'TestChaos' ./internal/chaos ./internal/experiments
# Cluster volume: the replicated-router suite (failover, breaker,
# divergence/backfill reconciliation, DeclareDead, zero-alloc guard)
# twice under the race detector, the cluster-backed gateway tests, and
# the brick-loss experiment smoke (digest-checked internally across
# 1/2/4 epoch workers; R=2 must absorb the outage with zero client
# errors).
go test -race -count=2 ./internal/cluster
go test -race -count=2 -run 'TestRealTimeCluster|TestUnavailableRetryAfter|TestScenarioValidate' ./internal/service ./internal/chaos
go run ./cmd/mimdraid -exp brick-loss -iometer-ios 300 > /dev/null
# Service front-end: the gateway determinism digest under the race
# detector, then the mimdserve smoke (two identical loads through the
# full HTTP stack must produce byte-identical digests) — once plain and
# once with the SLO control plane attached.
go test -race -count=2 -run 'TestDeterministicDigest|TestServerHTTP' ./internal/service
go run ./cmd/mimdserve -smoke
go run ./cmd/mimdserve -smoke -slo
# SLO control plane: the controller's ladder/hysteresis unit tests and
# the end-to-end brownout path through the gateway, twice under the
# race detector.
go test -race -count=2 ./internal/slo
go test -race -count=2 -run 'TestSLOBrownoutE2E' ./internal/service
# Fuzz smoke: short bounded runs of the NVRAM snapshot decoder and the
# crash/recovery-scan fuzzers (the seed corpora alone regression-test
# the known crashers).
go test -run '^$' -fuzz '^FuzzAdoptNVRAM$' -fuzztime 5s ./internal/core
go test -run '^$' -fuzz '^FuzzRecoveryScan$' -fuzztime 5s ./internal/core
