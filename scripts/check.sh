#!/bin/sh
# Tier-1 gate: build, vet, and the full test suite under the race
# detector, then once more with shuffled test order to catch
# inter-test state leakage.
set -eu
cd "$(dirname "$0")/.."
set -x
go build ./...
go vet ./...
go test -race ./...
go test -shuffle=on ./...
# The corruption/scrub/hedge composition tests exercise the most
# cross-subsystem state; run them twice under the race detector to
# catch order-dependent residue the single pass can miss.
go test -race -count=2 -run 'TestScrub|TestCorruption|TestSilent|TestLatent|TestTorn|TestHedgeFault' ./internal/core
# Fuzz smoke: a short bounded run of the NVRAM snapshot decoder fuzzer
# (the seed corpus alone regression-tests the known crashers).
go test -run '^$' -fuzz '^FuzzAdoptNVRAM$' -fuzztime 5s ./internal/core
