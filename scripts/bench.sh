#!/bin/sh
# Runs the benchmark suite and writes the raw `go test -json` stream to
# BENCH_<date>.json so the performance trajectory is tracked across PRs.
#
#   BENCH='Figure6|DESPushPop' BENCHTIME=3x scripts/bench.sh
#
# BENCH filters the benchmark set (default: all), BENCHTIME sets
# -benchtime (default 1x: one full pass per experiment).
#
#   scripts/bench.sh guard
#
# Guard mode gates two hot-path properties. First, the disabled-metrics
# overhead: the DES and scheduler benchmarks (which build arrays with no
# obs.Registry attached) must report zero allocs/op — the observability
# layer must stay free when disabled. Second, the pooled request path: the
# end-to-end Figure 6 benchmark must stay under FIG6_ALLOC_CAP allocs/op
# (default 260000, one fifth of the pre-pooling baseline) — a regression
# here means a request, extent-run, or completion object stopped being
# recycled. Set BASELINE=<file> to also fail if DESPushPop ns/op regresses
# more than 25% against a previous run's stream.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "guard" ]; then
    out=$(go test -run '^$' -bench 'BenchmarkDESPushPop|BenchmarkSchedPick' \
        -benchtime "${BENCHTIME:-10000x}" -benchmem ./internal/des/ ./internal/sched/)
    echo "$out"
    # Benchmark lines: name iters ns/op B/op allocs/op. Any nonzero
    # allocs/op on these hot paths means the nil-recorder guard broke.
    # containerheap is the stdlib comparison baseline, allocating by design.
    echo "$out" | tr '\t' ' ' | awk '
        /containerheap/ { next }
        /allocs\/op/ {
            for (i = 1; i <= NF; i++) if ($(i+1) == "allocs/op" && $i+0 != 0) {
                print "FAIL: " $1 " allocates (" $i " allocs/op) with metrics disabled"
                bad = 1
            }
        }
        END { exit bad }'
    if [ -n "${BASELINE:-}" ]; then
        now=$(echo "$out" | tr '\t' ' ' | awk '/BenchmarkDESPushPop/ { for (i=1;i<=NF;i++) if ($(i+1)=="ns/op") print $i }' | head -1)
        old=$(tr '\t' ' ' <"$BASELINE" | grep -o 'BenchmarkDESPushPop[^"]*ns/op' | head -1 |
            awk '{ for (i=1;i<=NF;i++) if ($(i+1)=="ns/op") print $i }')
        if [ -n "$now" ] && [ -n "$old" ]; then
            awk -v n="$now" -v o="$old" 'BEGIN {
                if (n > o * 1.25) { printf "FAIL: DESPushPop %.1f ns/op vs baseline %.1f (+%.0f%%)\n", n, o, (n/o-1)*100; exit 1 }
                printf "DESPushPop %.1f ns/op vs baseline %.1f ns/op: ok\n", n, o
            }'
        fi
    fi
    fig6=$(go test -run '^$' -bench 'BenchmarkFigure6CelloBase$' -benchtime 1x -benchmem .)
    echo "$fig6"
    echo "$fig6" | tr '\t' ' ' | awk -v cap="${FIG6_ALLOC_CAP:-260000}" '
        /BenchmarkFigure6CelloBase/ {
            for (i = 1; i <= NF; i++) if ($(i+1) == "allocs/op") {
                if ($i + 0 > cap) {
                    printf "FAIL: Figure6 pooled request path allocates %d allocs/op (cap %d)\n", $i, cap
                    exit 1
                }
                printf "Figure6 pooled request path: %d allocs/op (cap %d): ok\n", $i, cap
            }
        }'
    echo "guard: hot paths allocation-free with metrics disabled; pooled request path under alloc cap"
    exit 0
fi

out="BENCH_$(date +%Y%m%d).json"
go test -json -run '^$' -bench "${BENCH:-.}" -benchtime "${BENCHTIME:-1x}" -benchmem ./... >"$out"
grep -c '"Action":"output"' "$out" >/dev/null # sanity: stream is non-empty
echo "wrote $out"
