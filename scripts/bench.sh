#!/bin/sh
# Runs the benchmark suite and writes the raw `go test -json` stream to
# BENCH_<date>.json so the performance trajectory is tracked across PRs.
#
#   BENCH='Figure6|DESPushPop' BENCHTIME=3x scripts/bench.sh
#
# BENCH filters the benchmark set (default: all), BENCHTIME sets
# -benchtime (default 1x: one full pass per experiment).
set -eu
cd "$(dirname "$0")/.."
out="BENCH_$(date +%Y%m%d).json"
go test -json -run '^$' -bench "${BENCH:-.}" -benchtime "${BENCHTIME:-1x}" -benchmem ./... >"$out"
grep -c '"Action":"output"' "$out" >/dev/null # sanity: stream is non-empty
echo "wrote $out"
