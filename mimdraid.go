// Package mimdraid is the public API of the MimdRAID reproduction: a disk
// array that trades capacity for performance by combining striping,
// rotational replication, and mirroring (Yu et al., "Trading Capacity for
// Performance in a Disk Array", OSDI 2000).
//
// The package wraps the internal substrates (mechanical disk simulator,
// discrete-event kernel, calibration/head-tracking layer, schedulers,
// layout, and the array controller) behind a small surface:
//
//	sim := mimdraid.NewSim()
//	arr, err := mimdraid.New(sim, mimdraid.Options{
//		Config: mimdraid.SRArray(2, 3),   // 2-way stripe x 3 rotational replicas
//		Policy: "rsatf",
//	})
//	arr.Read(off, sectors, func(r mimdraid.Result) { ... })
//	sim.Run()
//
// Use Recommend to let the paper's analytic models pick the aspect ratio
// for a disk budget and workload profile.
package mimdraid

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/slo"
)

// Time is a simulated duration or timestamp in microseconds.
type Time = des.Time

// Common durations in simulated Time units.
const (
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
	Hour        = des.Hour
)

// Sim is the discrete-event simulation kernel every simulated component
// shares.
type Sim = des.Sim

// NewSim returns an empty simulator at time zero.
func NewSim() *Sim { return des.New() }

// Config selects an array configuration: Ds-way striping, Dr rotational
// replicas per disk, Dm mirror copies (Ds*Dr*Dm disks total).
type Config = layout.Config

// Convenience constructors for the paper's named configurations.
var (
	// Striping is a D x 1 x 1 array.
	Striping = layout.Striping
	// Mirror is a 1 x 1 x D array.
	Mirror = layout.Mirror
	// RAID10 is a (D/2) x 1 x 2 array.
	RAID10 = layout.RAID10
	// SRArray is a Ds x Dr x 1 array.
	SRArray = layout.SRArray
)

// Options configures an Array; see core.Options for field documentation.
type Options = core.Options

// MetricsRegistry is an observability hub: set Options.Obs to one to
// collect per-drive latency histograms, scheduler and fault counters, and
// (with TraceCap > 0) per-request traces from every array attached to it.
// Registry.Snapshot() exports deterministic JSON; WriteTraceJSONL exports
// the traces.
type MetricsRegistry = obs.Registry

// MetricsRecorder is one array's slice of a MetricsRegistry, from
// Array.Obs().
type MetricsRecorder = obs.Recorder

// Array is a configured MimdRAID logical disk.
type Array struct {
	*core.Array
}

// Volume is the array surface a storage front-end consumes — submit I/O,
// observe backpressure and fault accounting, drive the crash/recovery
// cycle — without reaching into array internals. *Array implements it
// (via the embedded core array); the service layer and future multi-brick
// routers are written against this interface.
type Volume = core.Volume

var _ Volume = (*Array)(nil)

// Result reports one completed request.
type Result = core.Result

// FaultModel configures per-drive transient-error and command-timeout
// injection (Options.Faults); the zero value disables injection entirely.
type FaultModel = disk.FaultModel

// FaultCounters tallies observed faults, retries, failovers, failed
// requests, and rebuild activity; read it with Array.Faults.
type FaultCounters = core.FaultCounters

// DriveStatus classifies one drive slot's health, from Array.DriveState.
type DriveStatus = core.DriveStatus

// Drive health states.
const (
	DriveHealthy    = core.DriveHealthy
	DriveRebuilding = core.DriveRebuilding
	DriveDegraded   = core.DriveDegraded
	DriveFailed     = core.DriveFailed
)

// RebuildProgress snapshots an active hot-spare reconstruction, from
// Array.RebuildProgress.
type RebuildProgress = core.RebuildProgress

// SlowProfile assigns fail-slow behaviour to one drive via
// FaultModel.Slow: a persistent service-time inflation factor plus
// optional periodic stutter windows.
type SlowProfile = disk.SlowProfile

// HealthOptions configures the per-drive fail-slow health tracker
// (Options.Health); the zero value disables tracking.
type HealthOptions = core.HealthOptions

// HealthState classifies one drive's tracked fail-slow condition, from
// Array.DriveHealth.
type HealthState = core.HealthState

// Health tracker states.
const (
	HealthHealthy = core.HealthHealthy
	HealthSuspect = core.HealthSuspect
	HealthEvicted = core.HealthEvicted
)

// HedgeCounters reports hedged-read activity, from Array.Hedges.
type HedgeCounters = core.HedgeCounters

// ShedCounters reports admission-control activity, from Array.Sheds.
type ShedCounters = core.ShedCounters

// ScrubOptions configures the paced background scrubber (Options.Scrub,
// or started mid-run with Array.StartScrub).
type ScrubOptions = core.ScrubOptions

// ScrubCounters reports scrubber activity, from Array.ScrubCounters.
type ScrubCounters = core.ScrubCounters

// ScrubProgress snapshots the active scrub pass, from
// Array.ScrubProgress.
type ScrubProgress = core.ScrubProgress

// Typed failure causes carried by Result.Err; test with errors.Is.
var (
	// ErrDriveIndex reports a drive index outside the array.
	ErrDriveIndex = core.ErrDriveIndex
	// ErrDataLost reports a request touching chunks with no surviving
	// copy.
	ErrDataLost = core.ErrDataLost
	// ErrNoFreshReplica reports a read finding every replica stale.
	ErrNoFreshReplica = core.ErrNoFreshReplica
	// ErrOverload reports a request rejected at Submit by admission
	// control (Options.MaxQueueDepth).
	ErrOverload = core.ErrOverload
	// ErrDeadlineExceeded reports a read that waited out
	// Options.ReadDeadline in a queue without being dispatched.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrCorruptData reports a verified read that found every reachable
	// replica known-corrupt (repair queued where possible).
	ErrCorruptData = core.ErrCorruptData
)

// DiskSpec describes a drive model in datasheet terms.
type DiskSpec = disk.Spec

// ST39133LWV returns the reference 9.1 GB, 10000 RPM drive of the paper's
// prototype.
func ST39133LWV() DiskSpec { return disk.ST39133LWV() }

// New builds an array of simulated drives on sim.
func New(sim *Sim, opts Options) (*Array, error) {
	a, err := core.New(sim, opts)
	if err != nil {
		return nil, err
	}
	return &Array{a}, nil
}

// Read submits a read of count sectors at logical sector offset off. done
// (optional) runs at completion, through the simulator.
func (a *Array) Read(off int64, count int, done func(Result)) error {
	return a.Submit(core.Read, off, count, false, done)
}

// Write submits a synchronous write.
func (a *Array) Write(off int64, count int, done func(Result)) error {
	return a.Submit(core.Write, off, count, false, done)
}

// WriteAsync submits an asynchronous write (reported separately, as the
// paper excludes sync-daemon traffic from response times).
func (a *Array) WriteAsync(off int64, count int, done func(Result)) error {
	return a.Submit(core.Write, off, count, true, done)
}

// BatchOp is one operation of a SubmitBatch: Op is mimdraid.OpRead or
// mimdraid.OpWrite, the rest mirror the Submit parameters.
type BatchOp = core.BatchOp

// Op selects read or write in a BatchOp.
type Op = core.Op

// BatchOp opcodes.
const (
	OpRead  = core.Read
	OpWrite = core.Write
)

// SubmitBatch issues a batch of operations with amortized dispatch: every
// operation is validated, resolved, and routed into the drive queues
// before any drive schedules, and each touched drive is then kicked
// exactly once. Callers carrying queues of accumulated work (closed-loop
// drivers priming a window, caches flushing) get one scheduling pass per
// drive instead of one per operation. Operations submit in order; the
// first error stops the batch and the count of submitted operations is
// returned alongside it.
func (a *Array) SubmitBatch(ops []BatchOp) (int, error) {
	return a.Array.SubmitBatch(ops)
}

// SubmitBatchErrs issues the batch like SubmitBatch but attempts every
// operation: per-operation submit errors come back in an index-aligned
// slice (nil when everything was submitted), alongside the count of
// operations actually queued. An operation with a non-nil error slot was
// never queued and its Done will not run.
func (a *Array) SubmitBatchErrs(ops []BatchOp) ([]error, int) {
	return a.Array.SubmitBatchErrs(ops)
}

// NVRAMDurability selects what a power failure does to the delayed-copy
// NVRAM table (CrashModel.Durability).
type NVRAMDurability = core.NVRAMDurability

// NVRAM durability modes.
const (
	// Volatile NVRAM loses the table: every queued delayed copy vanishes
	// and the recovery scan must find the resulting divergence.
	Volatile = core.Volatile
	// BatteryBacked NVRAM holds the table across the outage (bounded by
	// CrashModel.BatteryHorizon) and recovery re-adopts it.
	BatteryBacked = core.BatteryBacked
)

// CrashModel configures crash/power-fail injection (Options.Crash): an
// optional scheduled crash and recovery, the NVRAM durability mode, and
// the recovery scan's bandwidth pacing. The zero value disables the model
// entirely.
type CrashModel = core.CrashModel

// RecoveryCounters tallies crash and recovery activity — copies lost and
// adopted, the recovery scan's coverage, divergence found, repairs queued
// and resolved; read it with Array.Recovery. The counters reconcile:
// DivergentFound == RepairsQueued + Unrepairable and RepairsQueued ==
// Repaired + RepairsDropped.
type RecoveryCounters = core.RecoveryCounters

// ErrCrashed reports a request rejected or failed because the array is
// (or went) powered off; recalled by Result.Err and Submit. Test with
// errors.Is.
var ErrCrashed = core.ErrCrashed

// Tuning is the array's runtime actuator surface — hedge delay,
// admission depth, and the pacing of rebuild, scrub, and recovery-scan
// background work. Snapshot it with Array.Tuning, adjust it atomically
// with Array.SetTuning; the SLO control plane drives the same surface.
type Tuning = core.Tuning

// SLOTier classifies a tenant's service priority for the SLO control
// plane. Shedding strictly follows tier order: best-effort first, then
// standard; premium is never shed.
type SLOTier = slo.Tier

// The service tiers, in shed-last-first order.
const (
	TierPremium    = slo.Premium
	TierStandard   = slo.Standard
	TierBestEffort = slo.BestEffort
)

// ParseSLOTier maps the canonical tier names ("premium", "standard",
// "best-effort") back to tiers.
var ParseSLOTier = slo.ParseTier

// SLOLevel is the brownout ladder the controller walks under sustained
// SLO violation; each level adds one degradation on top of the last.
type SLOLevel = slo.Level

// The brownout levels, in escalation order.
const (
	SLONormal            = slo.Normal
	SLODegradeBackground = slo.DegradeBackground
	SLOShedBestEffort    = slo.ShedBestEffort
	SLOShedStandard      = slo.ShedStandard
)

// SLOOptions configures an SLOController: evaluation window, per-tier
// p99 targets, hysteresis (violating windows to escalate, compliant
// windows to step back), tenant classification, and actuator bounds.
type SLOOptions = slo.Options

// SLOActuators bounds what each brownout level may do to the system
// (background pacing floor, hedge clamp, throttle scale, depth factor).
type SLOActuators = slo.Actuators

// SLOController closes the loop from observed windowed p99 latency back
// onto the volume's Tuning actuators and the gateway's admission. It is
// event-driven on the virtual clock and deterministic; a nil controller
// is valid and inert, leaving every caller byte-identical.
type SLOController = slo.Controller

// SLOState is a deterministic snapshot of a controller (current level,
// streaks, per-tier counters, transition log) as served by /v1/stats.
type SLOState = slo.State

// NewSLOController attaches a controller to vol; the volume's current
// Tuning becomes the Normal baseline that recovery restores exactly.
func NewSLOController(vol Volume, opts SLOOptions) (*SLOController, error) {
	return slo.New(vol, opts)
}

// SetShardWorkers sets the process-wide worker count used by sharded
// multi-brick simulations (des.Sharded engines); the CLIs' -shards flag
// lands here. Counts below 1 are rejected with an error wrapping
// ErrWorkerCount. On success it returns the previous setting.
func SetShardWorkers(n int) (int, error) { return des.SetShardWorkers(n) }

// ErrWorkerCount reports an invalid worker count passed to
// SetShardWorkers.
var ErrWorkerCount = des.ErrWorkerCount

// ShardWorkers reports the current sharded-engine worker count.
func ShardWorkers() int { return des.ShardWorkers() }

// ShardedSim is a conservative-lookahead parallel driver over several
// independent Sims — one per "brick" (array plus drives plus workload).
// Cross-brick events must be scheduled through Send/SendArg with
// timestamps at least the lookahead past the sender's clock; output is
// byte-identical for any worker count.
type ShardedSim = des.Sharded

// NewShardedSim returns an engine over n fresh shards with the given
// lookahead (a lower bound on any cross-shard interaction latency).
func NewShardedSim(n int, lookahead Time) *ShardedSim {
	return des.NewSharded(n, lookahead)
}

// Workload profiles a workload for configuration recommendation, in the
// terms of the paper's models.
type Workload struct {
	// P is the fraction of I/Os that do not force foreground replica
	// propagation (Eq. 8); 1 when writes can always propagate in the
	// background, below 0.5 replication cannot pay off.
	P float64
	// Q is the typical per-disk queue length (busyness).
	Q float64
	// L is the seek-locality index (1 = uniformly random).
	L float64
}

// Recommend picks the best Ds x Dr configuration for a budget of D disks
// of the given spec under the workload profile, honoring the layout's
// constraint that Dr divide the number of disk surfaces and the
// prototype's Dr <= 6 cap.
func Recommend(spec DiskSpec, d int, w Workload) (Config, error) {
	md := model.Disk{S: spec.MaxSeek, R: des.Time(60e6 / spec.RPM)}
	ds, dr, err := model.Optimize(md, d, w.P, w.Q, w.L, func(dr int) bool {
		return spec.Heads%dr == 0
	})
	if err != nil {
		return Config{}, err
	}
	return layout.SRArray(ds, dr), nil
}

// PredictLatency evaluates the paper's latency model (Eqs. 9/12) for a
// configuration under a workload profile — the overhead-independent part
// of the expected response time.
func PredictLatency(spec DiskSpec, cfg Config, w Workload) Time {
	md := model.Disk{S: spec.MaxSeek, R: des.Time(60e6 / spec.RPM)}
	return model.LatencyInt(md, cfg.Ds, cfg.Dr*cfg.Dm, w.P, w.Q, w.L)
}

// ClusterVolume is a replicated volume over N brick arrays: extents placed
// on R distinct bricks by weighted rendezvous hashing, read failover and
// hedging behind per-brick circuit breakers, quorum writes with a
// divergence log, and paced backfill/re-replication. It implements Volume,
// so everything that fronts an Array (the service gateway included) fronts
// a cluster unchanged.
type ClusterVolume = cluster.Cluster

// ClusterOptions configures a ClusterVolume (replication factor, extent
// size, breaker thresholds, backfill pacing).
type ClusterOptions = cluster.Options

// ClusterCounters is the router's own accounting: failovers, breaker
// trips, probes, and the divergence ledger, which reconciles exactly
// (Diverged == Backfilled + Abandoned) once the cluster drains.
type ClusterCounters = cluster.Counters

// BrickHealth is a brick's circuit-breaker state.
type BrickHealth = cluster.Health

// Breaker states: a Healthy brick routes normally, a Suspect brick is
// deprioritized and hedged, an Open brick receives no traffic while
// half-open probes test it.
const (
	BrickHealthy = cluster.Healthy
	BrickSuspect = cluster.Suspect
	BrickOpen    = cluster.Open
)

// NewCluster builds a colocated replicated volume: the router and every
// brick share sim.
func NewCluster(sim *Sim, bricks []Volume, opts ClusterOptions) (*ClusterVolume, error) {
	return cluster.New(sim, bricks, opts)
}

// NewShardedCluster builds a cluster over a ShardedSim: the router on
// shard 0, brick b on shard 1+b, every crossing paying linkLat (which must
// be at least the engine's lookahead).
func NewShardedCluster(sims []*Sim, send func(from, to int, at Time, fn func()), linkLat Time, bricks []Volume, opts ClusterOptions) (*ClusterVolume, error) {
	return cluster.NewSharded(sims, send, linkLat, bricks, opts)
}
