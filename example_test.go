package mimdraid_test

import (
	"fmt"

	mimdraid "repro"
)

// Build a six-disk SR-Array and read from it.
func Example() {
	sim := mimdraid.NewSim()
	arr, err := mimdraid.New(sim, mimdraid.Options{
		Config:      mimdraid.SRArray(2, 3), // 2-way stripe x 3 rotational replicas
		DataSectors: 1 << 21,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	if err := arr.Read(4096, 8, func(r mimdraid.Result) {
		fmt.Printf("read %d sectors on a %v array\n", r.Count, arr.Layout().Cfg)
	}); err != nil {
		panic(err)
	}
	sim.Run()
	// Output: read 8 sectors on a 2x3x1 array
}

// Ask the paper's models for the best configuration of a disk budget.
func ExampleRecommend() {
	spec := mimdraid.ST39133LWV()
	// A read-mostly file-system workload with seek locality 4.14 on six
	// disks: the paper's Cello case.
	cfg, err := mimdraid.Recommend(spec, 6, mimdraid.Workload{P: 1, Q: 1, L: 4.14})
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg)
	// A workload dominated by foreground writes cannot benefit from
	// replication.
	cfg, err = mimdraid.Recommend(spec, 6, mimdraid.Workload{P: 0.4, Q: 1, L: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg)
	// Output:
	// 2x3x1
	// 6x1x1
}

// Replay a synthetic trace with the published Cello statistics.
func ExampleReplay() {
	sim := mimdraid.NewSim()
	tr := mimdraid.CelloBaseTrace(1, 300)
	arr, err := mimdraid.New(sim, mimdraid.Options{
		Config:      mimdraid.SRArray(2, 3),
		DataSectors: tr.DataSectors,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	res, err := mimdraid.Replay(sim, arr, tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed all: %v, saturated: %v\n", res.Completed == len(tr.Records), res.Saturated)
	// Output: completed all: true, saturated: false
}

// Drive an array with an Iometer-style closed loop.
func ExampleRunClosedLoop() {
	sim := mimdraid.NewSim()
	arr, err := mimdraid.New(sim, mimdraid.Options{Config: mimdraid.Striping(4), Seed: 1})
	if err != nil {
		panic(err)
	}
	res, err := mimdraid.RunClosedLoop(sim, arr, mimdraid.ClosedLoop{
		ReadFrac:    1,
		Sectors:     1,
		Outstanding: 8,
		Locality:    3,
		Seed:        2,
	}, 500)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d requests, throughput positive: %v\n", res.Completed, res.IOPS > 0)
	// Output: completed 500 requests, throughput positive: true
}

// Watch a workload online and get reconfiguration advice.
func ExampleAdvisor() {
	adv := mimdraid.NewAdvisor(1 << 24)
	// A highly local, read-only stream.
	off := int64(0)
	for i := 0; i < 2000; i++ {
		off = (off + 96) % (1 << 24)
		adv.Observe(mimdraid.AdvisorObservation{Off: off, Count: 8})
	}
	cfg, err := adv.Recommend(mimdraid.ST39133LWV(), 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("local reads on 12 disks -> %v (p=%.1f)\n", cfg, adv.P())
	// Output: local reads on 12 disks -> 2x6x1 (p=1.0)
}
