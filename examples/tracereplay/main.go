// Tracereplay generates a synthetic file-system trace with the published
// Cello statistics and replays it — open loop, at its original timestamps
// and at an accelerated rate — on four six-disk configurations, showing
// how the right SR-Array holds response time as load grows (the macro
// experiments of paper Section 4.1).
package main

import (
	"fmt"

	mimdraid "repro"
)

func main() {
	const ios = 3000
	tr := mimdraid.CelloBaseTrace(1, ios)
	st := tr.ComputeStats()
	fmt.Printf("synthetic Cello-base trace: %d I/Os, %.2f/s, %.0f%% reads, L=%.1f\n\n",
		st.IOs, st.AvgIOPS, st.ReadFrac*100, st.SeekLocality)

	configs := []mimdraid.Config{
		mimdraid.SRArray(2, 3),
		mimdraid.SRArray(1, 6),
		mimdraid.RAID10(6),
		mimdraid.Striping(6),
		mimdraid.Mirror(6),
	}
	for _, rate := range []float64{1, 8, 24} {
		fmt.Printf("trace at %gx original speed:\n", rate)
		scaled := tr.Scale(rate)
		for _, cfg := range configs {
			sim := mimdraid.NewSim()
			arr, err := mimdraid.New(sim, mimdraid.Options{
				Config:      cfg,
				Seed:        3,
				DataSectors: tr.DataSectors,
			})
			if err != nil {
				panic(err)
			}
			res, err := mimdraid.Replay(sim, arr, scaled)
			if err != nil {
				panic(err)
			}
			if res.Saturated {
				fmt.Printf("  %-6s  saturated (offered load exceeds sustainable throughput)\n", cfg)
				continue
			}
			fmt.Printf("  %-6s  mean %8v   p95 %8v   max %8v\n", cfg, res.Mean, res.P95, res.Max)
		}
		fmt.Println()
	}
	fmt.Println("The 2x3 SR-Array is fastest at every rate; the 1x6 and 6-way mirror")
	fmt.Println("saturate first because every write owes six copies.")
}
