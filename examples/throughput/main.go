// Throughput sweeps closed-loop load (Iometer-style, as in the paper's
// micro-benchmarks) across disk budgets and queue depths, showing the
// sqrt(D)-flavored scaling of a properly configured SR-Array and the
// narrowing SATF gap at deep queues (paper Figures 12/13 in miniature).
package main

import (
	"fmt"

	mimdraid "repro"
)

func main() {
	spec := mimdraid.ST39133LWV()
	const perPoint = 2500

	fmt.Println("random reads, seek locality 3, 512-byte requests")
	for _, q := range []int{8, 32} {
		fmt.Printf("\noutstanding requests: %d\n", q)
		fmt.Printf("  %-6s %-10s %12s %14s\n", "disks", "SR config", "SR IOPS", "striping IOPS")
		for _, d := range []int{2, 4, 6, 12} {
			cfg, err := mimdraid.Recommend(spec, d, mimdraid.Workload{P: 1, Q: float64(q) / float64(d), L: 3})
			if err != nil {
				panic(err)
			}
			sr := run(cfg, q, perPoint)
			stripe := run(mimdraid.Striping(d), q, perPoint)
			fmt.Printf("  %-6d %-10v %12.0f %14.0f\n", d, cfg, sr, stripe)
		}
	}
	fmt.Println("\nAt short queues the rotational replicas carry the SR-Array; at deep")
	fmt.Println("queues SATF finds rotationally convenient requests on its own and")
	fmt.Println("the gap narrows — exactly the paper's Figure 12 observation.")
}

func run(cfg mimdraid.Config, q, total int) float64 {
	sim := mimdraid.NewSim()
	arr, err := mimdraid.New(sim, mimdraid.Options{Config: cfg, Seed: 11})
	if err != nil {
		panic(err)
	}
	res, err := mimdraid.RunClosedLoop(sim, arr, mimdraid.ClosedLoop{
		ReadFrac:    1,
		Sectors:     1,
		Outstanding: q,
		Locality:    3,
		Seed:        5,
	}, total)
	if err != nil {
		panic(err)
	}
	return res.IOPS
}
