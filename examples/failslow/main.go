// Failslow demonstrates the fail-slow tolerance stack: a drive that is
// merely slow (not dead) defeats the fail-stop detector, and one laggard
// in a six-drive RAID-10 owns the read tail. Health tracking flags it
// Suspect, hedged reads cut the tail immediately, and eviction into a hot
// spare restores the array to all-healthy latencies.
package main

import (
	"fmt"
	"math/rand"

	mimdraid "repro"
)

// slowDrive0 gives drive 0 a persistent 8x service-time inflation plus
// 50 ms stutter windows every ~250 ms — a caricature of a drive retrying
// over a failing head.
func slowDrive0() mimdraid.FaultModel {
	return mimdraid.FaultModel{Slow: map[int]mimdraid.SlowProfile{0: {
		Factor:        8,
		StutterEvery:  250 * mimdraid.Millisecond,
		StutterFor:    50 * mimdraid.Millisecond,
		StutterFactor: 4,
	}}}
}

func main() {
	scenarios := []struct {
		name               string
		slow, hedge, evict bool
	}{
		{"all healthy", false, false, false},
		{"one slow drive", true, false, false},
		{"+ hedged reads", true, true, false},
		{"+ eviction into spare", true, true, true},
	}

	fmt.Println("RAID-10 on six drives, 4000 random 4KB reads, four outstanding.")
	fmt.Println("Drive 0 is fail-slow in all but the first scenario:")
	fmt.Printf("  %-22s %8s %8s %8s %8s\n", "scenario", "p50", "p99", "hedges", "evicted")
	for _, sc := range scenarios {
		sim := mimdraid.NewSim()
		opts := mimdraid.Options{
			Config:      mimdraid.RAID10(6),
			Seed:        9,
			DataSectors: 1 << 18,
		}
		if sc.slow {
			opts.Faults = slowDrive0()
		}
		if sc.hedge {
			opts.Hedge = true
			// Detection-only health tracking: Suspect drives lose
			// scheduler preference and hedges fire earlier against them.
			opts.Health = mimdraid.HealthOptions{
				Enabled: true, MinSamples: 16, Alpha: 0.25,
				EvictRatio: -1, EvictFaults: -1,
			}
		}
		if sc.evict {
			opts.Spares = 1
			opts.RebuildMBps = 100
			opts.Health.EvictRatio = 2.5 // re-arm eviction
		}
		arr, err := mimdraid.New(sim, opts)
		if err != nil {
			panic(err)
		}

		rng := rand.New(rand.NewSource(4))
		var lat mimdraid.Collector
		const n = 4000
		issued := 0
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(arr.DataSectors() - 8)
			if err := arr.Read(off, 8, func(r mimdraid.Result) {
				lat.Add(r.Latency())
				issue()
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
		sim.Run()

		h := arr.Hedges()
		fmt.Printf("  %-22s %8v %8v %8d %8d\n", sc.name,
			lat.Percentile(50), lat.Percentile(99),
			h.Issued, arr.Faults().Evictions)

		if sc.evict {
			fmt.Println("\nInside the eviction run:")
			fc := arr.Faults()
			fmt.Printf("  drive 0 inflated %d commands (%d in stutter windows) before\n", fc.SlowCommands, fc.Stutters)
			fmt.Printf("  the tracker evicted it; the hot spare now holds slot 0 (%v)\n", arr.DriveHealth(0))
			fmt.Printf("  hedges issued %d, won %d, lost %d, cancelled %d\n",
				h.Issued, h.Won, h.Lost, h.Cancelled)
			if !arr.Drain(mimdraid.Hour) {
				panic("drain failed")
			}
			fmt.Printf("  after rebuild drains: rebuilds done %d, lost chunks %d, slot 0 is %v\n",
				arr.Faults().RebuildsDone, arr.Faults().LostChunks, arr.DriveState(0))
		}
	}

	fmt.Println("\nThe slow drive widens p99 several-fold. Hedging recovers most of the")
	fmt.Println("tail at the cost of duplicate reads; eviction swaps the laggard for a")
	fmt.Println("hot spare and rebuilds its mirror copies, after which the array is")
	fmt.Println("structurally healthy again and hedges stop firing.")
}
