// Scrub demonstrates the silent-corruption tolerance stack: latent media
// errors return successfully with garbage, so an unprotected array serves
// corrupt data without noticing. Verify-on-read catches the poison at
// access time, fails over to a clean mirror copy, and repairs in place;
// the paced background scrubber finds the cold poison no workload ever
// touches before a second fault can strand it.
package main

import (
	"fmt"
	"math/rand"

	mimdraid "repro"
)

func main() {
	scenarios := []struct {
		name          string
		verify, scrub bool
	}{
		{"unprotected", false, false},
		{"+ verify-on-read", true, false},
		{"+ background scrub", true, true},
	}

	fmt.Println("RAID-10 on six drives. 64 chunk copies are pre-poisoned with latent")
	fmt.Println("errors and every read draws fresh ones at 0.5%; 4000 random 4KB reads:")
	fmt.Printf("  %-20s %8s %8s %8s %10s\n",
		"scenario", "silent", "detected", "repaired", "remaining")

	for _, sc := range scenarios {
		sim := mimdraid.NewSim()
		opts := mimdraid.Options{
			Config:      mimdraid.RAID10(6),
			Seed:        9,
			DataSectors: 1 << 18,
			Faults:      mimdraid.FaultModel{LatentRate: 0.005},
			VerifyReads: sc.verify,
		}
		if sc.scrub {
			opts.Scrub = mimdraid.ScrubOptions{Enabled: true, MBps: 32}
		}
		arr, err := mimdraid.New(sim, opts)
		if err != nil {
			panic(err)
		}
		injected := arr.InjectCorruption(64, 7)

		rng := rand.New(rand.NewSource(4))
		const n = 4000
		issued := 0
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(arr.DataSectors() - 8)
			if err := arr.Read(off, 8, func(mimdraid.Result) { issue() }); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
		sim.Run()

		fc := arr.Faults()
		fmt.Printf("  %-20s %8d %8d %8d %10d\n", sc.name,
			fc.SilentReads, fc.VerifyDetected, fc.RepairsDone, arr.CorruptCopies())

		if sc.scrub {
			s := arr.ScrubCounters()
			fmt.Println("\nInside the scrub run:")
			fmt.Printf("  injected %d poisoned copies; the workload touched only a fraction\n", injected)
			fmt.Printf("  scrub pass verified %d copies, condemned %d, repaired %d, skipped %d\n",
				s.Verified, s.Corrupt, s.Repaired, s.Skipped)
			fmt.Printf("  passes completed: %d, paced at 32 MB/s in the Background class\n", s.Passes)
		}
	}

	fmt.Println("\nUnprotected, the poisoned copies the workload happens to read are")
	fmt.Println("served as good data — only the oracle's silent-read count knows.")
	fmt.Println("Verify-on-read stops the bleeding for touched data but leaves cold")
	fmt.Println("poison in place; the scrubber sweeps the whole volume and repairs it,")
	fmt.Println("so a later drive loss cannot pair with a latent error it never saw.")
}
