// Quickstart: build a six-disk SR-Array (2-way striping x 3 rotational
// replicas), drive it with a read-mostly closed loop, and compare against
// plain striping and RAID-10 on the same spindle budget.
package main

import (
	"fmt"

	mimdraid "repro"
)

func main() {
	// The workload of the paper's micro-benchmarks: small requests, seek
	// locality index 3, read-mostly.
	load := mimdraid.ClosedLoop{
		ReadFrac:    0.9,
		Sectors:     8, // 4 KB
		Outstanding: 2,
		Locality:    3,
		Seed:        7,
	}

	fmt.Println("Six disks, three ways to configure them:")
	for _, cfg := range []mimdraid.Config{
		mimdraid.SRArray(2, 3), // the paper's model picks 2x3 for loads like this
		mimdraid.RAID10(6),     // 3-way stripe, 2-way mirror
		mimdraid.Striping(6),   // conventional striping
	} {
		sim := mimdraid.NewSim()
		arr, err := mimdraid.New(sim, mimdraid.Options{Config: cfg, Seed: 42})
		if err != nil {
			panic(err)
		}
		res, err := mimdraid.RunClosedLoop(sim, arr, load, 3000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-6s  mean %8v   p95 %8v   %6.0f IOPS\n",
			cfg, res.Mean, res.P95, res.IOPS)
	}

	// And the model agrees before any simulation runs:
	spec := mimdraid.ST39133LWV()
	w := mimdraid.Workload{P: 1, Q: 1, L: 3}
	rec, err := mimdraid.Recommend(spec, 6, w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmodel recommendation for 6 disks at L=3: %v "+
		"(predicted overhead-independent latency %v vs %v for striping)\n",
		rec,
		mimdraid.PredictLatency(spec, rec, w),
		mimdraid.PredictLatency(spec, mimdraid.Striping(6), w))
}
