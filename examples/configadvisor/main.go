// Configadvisor answers the paper's "aspect ratio question": given a
// budget of disks and a workload profile, how should the array trade
// capacity for performance? It sweeps disk budgets and workload parameters
// and prints the model-recommended configuration with its predicted
// latency (Section 2's models, including the integer-factor and Dr<=6
// constraints).
package main

import (
	"fmt"

	mimdraid "repro"
)

func main() {
	spec := mimdraid.ST39133LWV()

	fmt.Println("Recommended Ds x Dr x Dm per disk budget and workload")
	fmt.Println("(p = fraction of I/Os not forcing foreground propagation,")
	fmt.Println(" q = per-disk queue length, L = seek locality index)")
	fmt.Println()

	workloads := []struct {
		name string
		w    mimdraid.Workload
	}{
		{"file system (Cello base: L=4.14)", mimdraid.Workload{P: 1, Q: 1, L: 4.14}},
		{"news spool (Cello disk6: L=16.67)", mimdraid.Workload{P: 1, Q: 1, L: 16.67}},
		{"OLTP (TPC-C: L=1.04)", mimdraid.Workload{P: 1, Q: 1, L: 1.04}},
		{"OLTP, busy (q=8 per disk)", mimdraid.Workload{P: 1, Q: 8, L: 1.04}},
		{"write-heavy, no idle (p=0.6)", mimdraid.Workload{P: 0.6, Q: 1, L: 1.04}},
		{"write-dominated (p=0.4)", mimdraid.Workload{P: 0.4, Q: 1, L: 1.04}},
	}

	for _, wl := range workloads {
		fmt.Printf("%s\n", wl.name)
		fmt.Printf("  %-8s %-10s %-14s %-14s %s\n", "disks", "config", "predicted", "striping", "speedup")
		for _, d := range []int{2, 4, 6, 9, 12, 24, 36} {
			cfg, err := mimdraid.Recommend(spec, d, wl.w)
			if err != nil {
				panic(err)
			}
			pred := mimdraid.PredictLatency(spec, cfg, wl.w)
			stripe := mimdraid.PredictLatency(spec, mimdraid.Striping(d), wl.w)
			fmt.Printf("  %-8d %-10v %-14v %-14v %.2fx\n", d, cfg, pred, stripe, float64(stripe)/float64(pred))
		}
		fmt.Println()
	}

	fmt.Println("Rule of thumb (Section 2.6): with D disks, the overhead-independent")
	fmt.Println("part of the response time improves by about sqrt(D):")
	w := mimdraid.Workload{P: 1, Q: 1, L: 1}
	base := mimdraid.PredictLatency(spec, mustRec(spec, 1, w), w)
	for _, d := range []int{1, 4, 9, 16, 36} {
		cfg := mustRec(spec, d, w)
		pred := mimdraid.PredictLatency(spec, cfg, w)
		fmt.Printf("  D=%-3d %-8v latency %-10v improvement %.2fx\n", d, cfg, pred, float64(base)/float64(pred))
	}
}

func mustRec(spec mimdraid.DiskSpec, d int, w mimdraid.Workload) mimdraid.Config {
	cfg, err := mimdraid.Recommend(spec, d, w)
	if err != nil {
		panic(err)
	}
	return cfg
}
