// Failure demonstrates the reliability side of the capacity tradeoff
// (paper Section 2.5): mirrored configurations survive a drive failure in
// degraded mode, while an SR-Array — all replicas on one disk — loses the
// failed disk's share of the data, and plain striping loses it with no
// rotational benefit to show for it.
package main

import (
	"fmt"
	"math/rand"

	mimdraid "repro"
)

func main() {
	configs := []mimdraid.Config{
		mimdraid.SRArray(2, 3), // fast, not redundant
		mimdraid.RAID10(6),     // redundant
		{Ds: 1, Dr: 3, Dm: 2},  // SR-Mirror: both
		mimdraid.Striping(6),   // neither
	}
	fmt.Println("Six disks, drive 0 fails mid-run. 600 random 4KB reads after the failure:")
	fmt.Printf("  %-8s %10s %10s %14s\n", "config", "served", "lost", "mean latency")
	for _, cfg := range configs {
		sim := mimdraid.NewSim()
		arr, err := mimdraid.New(sim, mimdraid.Options{Config: cfg, Seed: 9})
		if err != nil {
			panic(err)
		}
		arr.FailDrive(0)

		rng := rand.New(rand.NewSource(4))
		served, lost := 0, 0
		var lat mimdraid.Collector
		const n = 600
		// Closed loop, four outstanding.
		issued := 0
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(arr.DataSectors() - 8)
			if err := arr.Read(off, 8, func(r mimdraid.Result) {
				if r.Failed {
					lost++
				} else {
					served++
					lat.Add(r.Latency())
				}
				issue()
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
		sim.Run()
		fmt.Printf("  %-8v %9d%% %9d%% %14v\n", cfg, served*100/n, lost*100/n, lat.Mean())
	}
	fmt.Println("\nMirroring (Dm>1) keeps every byte reachable; the SR-Array and the")
	fmt.Println("stripe lose the failed disk's share. The general SR-Mirror buys both")
	fmt.Println("rotational replicas and failure survival — at triple the capacity.")
}
