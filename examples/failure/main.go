// Failure demonstrates the reliability side of the capacity tradeoff
// (paper Section 2.5): mirrored configurations survive a drive failure in
// degraded mode, while an SR-Array — all replicas on one disk — loses the
// failed disk's share of the data, and plain striping loses it with no
// rotational benefit to show for it.
package main

import (
	"fmt"
	"math/rand"

	mimdraid "repro"
)

func main() {
	configs := []mimdraid.Config{
		mimdraid.SRArray(2, 3), // fast, not redundant
		mimdraid.RAID10(6),     // redundant
		{Ds: 1, Dr: 3, Dm: 2},  // SR-Mirror: both
		mimdraid.Striping(6),   // neither
	}
	fmt.Println("Six disks, drive 0 fails mid-run. 600 random 4KB reads after the failure:")
	fmt.Printf("  %-8s %10s %10s %14s\n", "config", "served", "lost", "mean latency")
	for _, cfg := range configs {
		sim := mimdraid.NewSim()
		arr, err := mimdraid.New(sim, mimdraid.Options{Config: cfg, Seed: 9})
		if err != nil {
			panic(err)
		}
		arr.FailDrive(0)

		rng := rand.New(rand.NewSource(4))
		served, lost := 0, 0
		var lat mimdraid.Collector
		const n = 600
		// Closed loop, four outstanding.
		issued := 0
		var issue func()
		issue = func() {
			if issued >= n {
				return
			}
			issued++
			off := rng.Int63n(arr.DataSectors() - 8)
			if err := arr.Read(off, 8, func(r mimdraid.Result) {
				if r.Failed {
					lost++
				} else {
					served++
					lat.Add(r.Latency())
				}
				issue()
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
		sim.Run()
		fmt.Printf("  %-8v %9d%% %9d%% %14v\n", cfg, served*100/n, lost*100/n, lat.Mean())
	}
	fmt.Println("\nMirroring (Dm>1) keeps every byte reachable; the SR-Array and the")
	fmt.Println("stripe lose the failed disk's share. The general SR-Mirror buys both")
	fmt.Println("rotational replicas and failure survival — at triple the capacity.")

	rebuildDemo()
}

// rebuildDemo runs the same failure against a RAID-10 with a hot spare and
// background fault injection: the dead drive's slot is reconstructed from
// its mirror while the read loop keeps running, and the degraded-mode
// counters record every transient error, retry, and failover along the way.
func rebuildDemo() {
	fmt.Println("\nSame failure with a hot spare (RAID-10, rebuild capped at 40 MB/s,")
	fmt.Println("transient faults injected at 2%):")

	sim := mimdraid.NewSim()
	arr, err := mimdraid.New(sim, mimdraid.Options{
		Config:      mimdraid.RAID10(6),
		Seed:        9,
		DataSectors: 1 << 18, // 128 MB keeps the demo short
		Spares:      1,
		RebuildMBps: 40,
		Faults:      mimdraid.FaultModel{TransientRate: 0.02},
	})
	if err != nil {
		panic(err)
	}
	if err := arr.FailDrive(0); err != nil {
		panic(err)
	}

	p := arr.RebuildProgress()
	fmt.Printf("  rebuild onto spare started: slot %d, %d chunks, ETA %v\n",
		p.Slot, p.Total, p.ETA)

	// Keep reading while the rebuild runs behind the load.
	rng := rand.New(rand.NewSource(4))
	served, lost := 0, 0
	var lat mimdraid.Collector
	const n = 600
	issued := 0
	var issue func()
	issue = func() {
		if issued >= n {
			return
		}
		issued++
		off := rng.Int63n(arr.DataSectors() - 8)
		if err := arr.Read(off, 8, func(r mimdraid.Result) {
			if r.Failed {
				lost++
			} else {
				served++
				lat.Add(r.Latency())
			}
			issue()
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	for served+lost < n {
		if !sim.Step() {
			panic("simulation stalled")
		}
	}
	if p = arr.RebuildProgress(); p.Active {
		fmt.Printf("  after %d reads: %d/%d chunks rebuilt, ETA %v, slot 0 is %v\n",
			n, p.Done, p.Total, p.ETA, arr.DriveState(0))
	}
	arr.Drain(mimdraid.Hour)

	fc := arr.Faults()
	fmt.Printf("  mid-rebuild reads: %d served, %d lost, mean %v\n", served, lost, lat.Mean())
	fmt.Printf("  slot 0 after rebuild: %v (alive=%v, spares left %d)\n",
		arr.DriveState(0), arr.Alive(0), arr.Spares())
	fmt.Printf("  counters: transients %d, retries %d, failovers %d, rebuilds %d/%d, chunks lost %d\n",
		fc.Transients, fc.Retries, fc.Failovers, fc.RebuildsDone, fc.RebuildsStarted, fc.LostChunks)
	fmt.Println("\nThe spare restores full redundancy without stopping the workload;")
	fmt.Println("injected transient errors are absorbed by the in-drive retry and,")
	fmt.Println("when a command faults twice, by failover to the surviving mirror.")
}
