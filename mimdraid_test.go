package mimdraid

import (
	"errors"
	"testing"
)

func TestPublicAPIQuickPath(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{Config: SRArray(2, 3), Policy: "rsatf", DataSectors: 1 << 21, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lat Time
	reads := 0
	for i := int64(0); i < 20; i++ {
		if err := arr.Read(i*4096, 8, func(r Result) {
			lat += r.Latency()
			reads++
		}); err != nil {
			t.Fatal(err)
		}
	}
	wrote := false
	if err := arr.Write(512, 8, func(Result) { wrote = true }); err != nil {
		t.Fatal(err)
	}
	async := false
	if err := arr.WriteAsync(1024, 8, func(r Result) { async = r.Async }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if reads != 20 || !wrote || !async {
		t.Fatalf("reads=%d wrote=%v async=%v", reads, wrote, async)
	}
	if lat <= 0 {
		t.Fatal("non-positive cumulative latency")
	}
}

// The crash/recovery surface works end to end through the public API:
// power-fail a battery-backed array mid-write-burst, watch outstanding
// work fail with ErrCrashed, recover, and reconcile the counters.
func TestPublicAPICrashRecovery(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{
		Config: RAID10(4), Policy: "rsatf", DataSectors: 1 << 16, Seed: 1,
		Crash: CrashModel{Enabled: true, Durability: BatteryBacked},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ops []BatchOp
	crashedOps := 0
	for i := int64(0); i < 12; i++ {
		ops = append(ops, BatchOp{Op: OpWrite, Off: i * 1024, Count: 8, Done: func(r Result) {
			if errors.Is(r.Err, ErrCrashed) {
				crashedOps++
			}
		}})
	}
	if errs, n := arr.SubmitBatchErrs(ops); errs != nil || n != len(ops) {
		t.Fatalf("SubmitBatchErrs = (%v, %d)", errs, n)
	}
	for arr.NVRAMUsed() == 0 && sim.Step() {
	}
	if err := arr.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := arr.Write(0, 8, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write on crashed array = %v, want ErrCrashed", err)
	}
	if err := arr.Recover(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	rec := arr.Recovery()
	if rec.Crashes != 1 || rec.Recoveries != 1 {
		t.Fatalf("recovery counters %+v", rec)
	}
	if rec.LostDelayed != 0 {
		t.Fatalf("battery-backed crash lost %d delayed copies", rec.LostDelayed)
	}
	if rec.Adopted == 0 {
		t.Fatal("battery-backed recovery adopted nothing")
	}
	if crashedOps == 0 {
		t.Fatal("no outstanding op observed ErrCrashed")
	}
	if got := arr.DivergentCopies(); got != 0 {
		t.Fatalf("%d divergent copies after recovery", got)
	}
}

func TestRecommendMatchesPaperExamples(t *testing.T) {
	spec := ST39133LWV()
	// Cello base, 6 disks, background propagation, low load, L=4.14: the
	// paper's model recommends 2x3.
	cfg, err := Recommend(spec, 6, Workload{P: 1, Q: 1, L: 4.14})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ds != 2 || cfg.Dr != 3 {
		t.Fatalf("Cello base D=6: recommended %v, paper says 2x3", cfg)
	}
	// TPC-C, 36 disks, L~1: the paper's best is 9x4.
	cfg, err = Recommend(spec, 36, Workload{P: 1, Q: 1, L: 1.04})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ds != 9 || cfg.Dr != 4 {
		t.Fatalf("TPC-C D=36: recommended %v, paper says 9x4", cfg)
	}
	// Write-dominated workloads preclude replication.
	cfg, err = Recommend(spec, 8, Workload{P: 0.4, Q: 1, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dr != 1 {
		t.Fatalf("p=0.4: recommended %v, want pure striping", cfg)
	}
}

func TestPredictLatencyOrdering(t *testing.T) {
	spec := ST39133LWV()
	w := Workload{P: 1, Q: 1, L: 1}
	// At 6 disks, the recommended SR-Array should predict lower latency
	// than pure striping and pure rotational replication.
	rec, err := Recommend(spec, 6, w)
	if err != nil {
		t.Fatal(err)
	}
	lRec := PredictLatency(spec, rec, w)
	lStripe := PredictLatency(spec, Striping(6), w)
	lTall := PredictLatency(spec, SRArray(1, 6), w)
	if lRec > lStripe || lRec > lTall {
		t.Fatalf("recommended %v (%v) not best: striping %v, 1x6 %v", rec, lRec, lStripe, lTall)
	}
}
