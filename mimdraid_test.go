package mimdraid

import (
	"errors"
	"testing"
)

func TestPublicAPIQuickPath(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{Config: SRArray(2, 3), Policy: "rsatf", DataSectors: 1 << 21, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lat Time
	reads := 0
	for i := int64(0); i < 20; i++ {
		if err := arr.Read(i*4096, 8, func(r Result) {
			lat += r.Latency()
			reads++
		}); err != nil {
			t.Fatal(err)
		}
	}
	wrote := false
	if err := arr.Write(512, 8, func(Result) { wrote = true }); err != nil {
		t.Fatal(err)
	}
	async := false
	if err := arr.WriteAsync(1024, 8, func(r Result) { async = r.Async }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if reads != 20 || !wrote || !async {
		t.Fatalf("reads=%d wrote=%v async=%v", reads, wrote, async)
	}
	if lat <= 0 {
		t.Fatal("non-positive cumulative latency")
	}
}

// The crash/recovery surface works end to end through the public API:
// power-fail a battery-backed array mid-write-burst, watch outstanding
// work fail with ErrCrashed, recover, and reconcile the counters.
func TestPublicAPICrashRecovery(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{
		Config: RAID10(4), Policy: "rsatf", DataSectors: 1 << 16, Seed: 1,
		Crash: CrashModel{Enabled: true, Durability: BatteryBacked},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ops []BatchOp
	crashedOps := 0
	for i := int64(0); i < 12; i++ {
		ops = append(ops, BatchOp{Op: OpWrite, Off: i * 1024, Count: 8, Done: func(r Result) {
			if errors.Is(r.Err, ErrCrashed) {
				crashedOps++
			}
		}})
	}
	if errs, n := arr.SubmitBatchErrs(ops); errs != nil || n != len(ops) {
		t.Fatalf("SubmitBatchErrs = (%v, %d)", errs, n)
	}
	for arr.NVRAMUsed() == 0 && sim.Step() {
	}
	if err := arr.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := arr.Write(0, 8, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write on crashed array = %v, want ErrCrashed", err)
	}
	if err := arr.Recover(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	rec := arr.Recovery()
	if rec.Crashes != 1 || rec.Recoveries != 1 {
		t.Fatalf("recovery counters %+v", rec)
	}
	if rec.LostDelayed != 0 {
		t.Fatalf("battery-backed crash lost %d delayed copies", rec.LostDelayed)
	}
	if rec.Adopted == 0 {
		t.Fatal("battery-backed recovery adopted nothing")
	}
	if crashedOps == 0 {
		t.Fatal("no outstanding op observed ErrCrashed")
	}
	if got := arr.DivergentCopies(); got != 0 {
		t.Fatalf("%d divergent copies after recovery", got)
	}
}

// Batch submission composes with admission control through the public
// API: one SubmitBatchErrs mixing malformed operations with enough valid
// ones to trip MaxQueueDepth returns an index-aligned error slice —
// malformed slots get their own errors, excess load gets ErrOverload,
// accepted slots (and only those) complete — and the shed work succeeds
// when resubmitted after the queues drain.
func TestPublicAPIBatchErrsWithOverload(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{
		Config: SRArray(2, 2), Policy: "rsatf", DataSectors: 1 << 16, Seed: 1,
		MaxQueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The service front-end consumes the array through Volume; this test
	// drives the same surface.
	var vol Volume = arr

	const nOps = 24
	done := make([]int, nOps)
	var ops []BatchOp
	for i := 0; i < nOps; i++ {
		i := i
		off := int64(i%8) * 512 // pile onto few stripes: queues build fast
		if i%5 == 3 {
			off = vol.DataSectors() + int64(i) // malformed: past end of volume
		}
		ops = append(ops, BatchOp{Op: OpWrite, Off: off, Count: 8, Done: func(Result) { done[i]++ }})
	}
	errs, n := vol.SubmitBatchErrs(ops)
	if errs == nil {
		t.Fatal("expected a partial-failure error slice, got full acceptance")
	}
	if len(errs) != nOps {
		t.Fatalf("errs not index-aligned: len %d, want %d", len(errs), nOps)
	}
	accepted, shed, malformed := 0, 0, 0
	for i, e := range errs {
		switch {
		case e == nil:
			accepted++
		case errors.Is(e, ErrOverload):
			shed++
			if i%5 == 3 {
				t.Fatalf("malformed op %d reported ErrOverload", i)
			}
		default:
			malformed++
			if i%5 != 3 {
				t.Fatalf("valid op %d rejected with %v", i, e)
			}
		}
	}
	if accepted != n {
		t.Fatalf("accepted count %d != n %d", accepted, n)
	}
	if accepted == 0 || shed == 0 || malformed == 0 {
		t.Fatalf("want all three outcomes, got accepted=%d shed=%d malformed=%d", accepted, shed, malformed)
	}
	if got := arr.Sheds().Overload; got != int64(shed) {
		t.Fatalf("Sheds().Overload = %d, want %d", got, shed)
	}
	sim.Run()
	var retry []BatchOp
	for i, e := range errs {
		switch {
		case e == nil:
			if done[i] != 1 {
				t.Fatalf("accepted op %d completed %d times, want 1", i, done[i])
			}
		default:
			if done[i] != 0 {
				t.Fatalf("rejected op %d ran its Done %d times", i, done[i])
			}
			if errors.Is(e, ErrOverload) {
				retry = append(retry, ops[i])
			}
		}
	}
	// Retry the shed work in waves — resubmit, drain, resubmit what was
	// shed again — exactly the discipline a 429-honoring client follows.
	// Every op must land within a bounded number of waves.
	for wave := 0; len(retry) > 0; wave++ {
		if wave > 2*nOps {
			t.Fatalf("retry never drained: %d ops still shed", len(retry))
		}
		errs, _ := vol.SubmitBatchErrs(retry)
		var next []BatchOp
		for i, e := range errs {
			switch {
			case e == nil:
			case errors.Is(e, ErrOverload):
				next = append(next, retry[i])
			default:
				t.Fatalf("retry wave %d op %d failed with %v", wave, i, e)
			}
		}
		sim.Run()
		retry = next
	}
	for i := range done {
		want := 1
		if i%5 == 3 {
			want = 0 // malformed ops never run
		}
		if done[i] != want {
			t.Fatalf("op %d completed %d times, want %d", i, done[i], want)
		}
	}
	if !vol.Idle() {
		t.Fatal("volume not idle after drain")
	}
}

// The per-tenant SLO control plane works end to end through the public
// API: classify tiers, walk the brownout ladder on violating windows
// (clamping the array's tuning on the way up), shed best-effort before
// standard and premium never, then recover to Normal and restore the
// attach-time tuning.
func TestPublicAPISLOController(t *testing.T) {
	sim := NewSim()
	arr, err := New(sim, Options{
		Config: SRArray(2, 2), Policy: "rsatf", DataSectors: 1 << 16, Seed: 1,
		MaxQueueDepth: 8, Hedge: true, HedgeAfter: 10 * Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := arr.Tuning()
	window := 10 * Millisecond
	var targets [3]Time
	targets[TierPremium] = 5 * Millisecond
	ctl, err := NewSLOController(arr, SLOOptions{
		Window: window, Targets: targets,
		ViolateWindows: 1, RecoverWindows: 1, MinSamples: 1,
		Actuators: SLOActuators{HedgeAfter: 2 * Millisecond},
		Classify: func(tenant string) SLOTier {
			tier, err := ParseSLOTier(tenant)
			if err != nil {
				return TierStandard
			}
			return tier
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ctl.Tier("best-effort"); got != TierBestEffort {
		t.Fatalf("Tier(best-effort) = %v", got)
	}
	// Feed one premium completion per window, then step into the next
	// window with an Admit probe (which records no latency) so the
	// window closes and is judged — one level per violating window.
	win := int64(0)
	feed := func(lat Time) {
		ctl.Observe(Time(win)*window+Millisecond, "premium", lat, false)
		win++
		ctl.Admit(Time(win)*window+Millisecond, "premium")
	}
	feed(50 * Millisecond)
	if got := ctl.Level(); got != SLODegradeBackground {
		t.Fatalf("after one violating window: level %v", got)
	}
	if got := arr.Tuning().HedgeAfter; got != 2*Millisecond {
		t.Fatalf("brownout did not clamp HedgeAfter: %v", got)
	}
	feed(50 * Millisecond)
	if got := ctl.Level(); got != SLOShedBestEffort {
		t.Fatalf("after two violating windows: level %v", got)
	}
	now := Time(win)*window + Millisecond
	if _, ok := ctl.Admit(now, "best-effort"); ok {
		t.Error("best-effort admitted at best-effort-shed")
	}
	if ra, ok := ctl.Admit(now, "premium"); !ok || ra != 0 {
		t.Errorf("premium shed (ra=%v ok=%v); premium must never be shed", ra, ok)
	}
	if got := ctl.RateScale("best-effort"); got >= 1 {
		t.Errorf("best-effort RateScale %v during brownout", got)
	}
	if got := ctl.RateScale("premium"); got != 1 {
		t.Errorf("premium RateScale %v", got)
	}
	// Compliant windows walk back down and restore the base tuning.
	for i := 0; i < 2; i++ {
		feed(1 * Millisecond)
	}
	if got := ctl.Level(); got != SLONormal {
		t.Fatalf("after compliant windows: level %v", got)
	}
	if got := arr.Tuning(); got != base {
		t.Fatalf("Normal did not restore tuning: %+v != %+v", got, base)
	}
	st := ctl.State()
	if st.Escalations != 2 || st.Deescalations != 2 {
		t.Fatalf("esc/deesc = %d/%d", st.Escalations, st.Deescalations)
	}
	if st.Tiers[TierBestEffort].Sheds == 0 || st.Tiers[TierPremium].Sheds != 0 {
		t.Fatalf("shed counters %+v", st.Tiers)
	}
	// The nil controller is inert through the public surface too.
	var off *SLOController
	if _, ok := off.Admit(now, "best-effort"); !ok {
		t.Error("nil controller shed a request")
	}
	if off.RateScale("best-effort") != 1 || off.Level() != SLONormal {
		t.Error("nil controller is not neutral")
	}
}

func TestRecommendMatchesPaperExamples(t *testing.T) {
	spec := ST39133LWV()
	// Cello base, 6 disks, background propagation, low load, L=4.14: the
	// paper's model recommends 2x3.
	cfg, err := Recommend(spec, 6, Workload{P: 1, Q: 1, L: 4.14})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ds != 2 || cfg.Dr != 3 {
		t.Fatalf("Cello base D=6: recommended %v, paper says 2x3", cfg)
	}
	// TPC-C, 36 disks, L~1: the paper's best is 9x4.
	cfg, err = Recommend(spec, 36, Workload{P: 1, Q: 1, L: 1.04})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ds != 9 || cfg.Dr != 4 {
		t.Fatalf("TPC-C D=36: recommended %v, paper says 9x4", cfg)
	}
	// Write-dominated workloads preclude replication.
	cfg, err = Recommend(spec, 8, Workload{P: 0.4, Q: 1, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dr != 1 {
		t.Fatalf("p=0.4: recommended %v, want pure striping", cfg)
	}
}

func TestPredictLatencyOrdering(t *testing.T) {
	spec := ST39133LWV()
	w := Workload{P: 1, Q: 1, L: 1}
	// At 6 disks, the recommended SR-Array should predict lower latency
	// than pure striping and pure rotational replication.
	rec, err := Recommend(spec, 6, w)
	if err != nil {
		t.Fatal(err)
	}
	lRec := PredictLatency(spec, rec, w)
	lStripe := PredictLatency(spec, Striping(6), w)
	lTall := PredictLatency(spec, SRArray(1, 6), w)
	if lRec > lStripe || lRec > lTall {
		t.Fatalf("recommended %v (%v) not best: striping %v, 1x6 %v", rec, lRec, lStripe, lTall)
	}
}
